"""Multiprocessing worker pool for batch jobs.

The pool turns the single-shot pipeline into a concurrent job runner:

* jobs are sharded across ``N`` worker processes (each a fresh Python
  interpreter importing only :mod:`repro`), and results stream back the
  moment they finish — callers never wait for the whole batch;
* every job carries an optional wall-clock budget; a job that overruns
  it has its worker killed and is reported as ``timeout`` while the rest
  of the batch proceeds on a replacement worker;
* a worker that dies for any reason (OOM kill, segfault, ``os._exit``)
  yields a ``crashed`` result for the job it was running — one bad
  program never takes down a batch;
* :meth:`WorkerPool.cancel_pending` drains gracefully: queued jobs
  complete immediately as ``cancelled`` while in-flight jobs run to
  their natural end (the CLI maps the first SIGINT to exactly this);
* an optional :class:`~repro.service.cache.ResultCache` short-circuits
  duplicate submissions, and identical jobs *within* one batch are
  coalesced — one execution fans its result out to every twin (the
  classroom case: many students share a bug).

Supervision protocol: each worker owns a private duplex pipe.  The
parent sends ``(job_id, job_dict)``; the worker answers
``(job_id, result_dict)``.  Private pipes mean a killed worker can only
ever corrupt its own channel — which the parent discards when it spawns
the replacement — never the rest of the pool.

Start method: ``fork`` where available (Linux).  Unlike spawn/forkserver
it never re-imports the parent's ``__main__`` — so pools work from
scripts, ``python -c``, notebooks and the REPL alike — and worker
startup is cheap enough to respawn after every crash or timeout kill.
The initial workers are forked before the dispatcher thread exists, so
the usual fork-with-threads hazards apply only to replacement workers,
which run a self-contained loop over an inherited pipe.
``REPRO_POOL_START`` overrides for debugging.
"""

from __future__ import annotations

import multiprocessing
import os
import queue
import signal
import threading
import time
from collections import deque
from multiprocessing import connection
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple

from .. import telemetry
from .cache import ResultCache
from .jobs import Job, JobResult


def _pick_start_method() -> str:
    override = os.environ.get("REPRO_POOL_START", "").strip()
    methods = multiprocessing.get_all_start_methods()
    if override:
        if override not in methods:
            raise ValueError(f"REPRO_POOL_START={override!r} is not one of "
                             f"{methods}")
        return override
    return "fork" if "fork" in methods else "spawn"


def _worker_main(conn_) -> None:
    """Worker loop: receive a job, run it, send the result, repeat.

    SIGINT is ignored so a terminal ^C (delivered to the whole process
    group) reaches only the parent, which decides whether to drain or
    abort; the parent stops workers by sending ``None`` or closing the
    pipe.
    """
    from .jobs import run_job  # re-imported under spawn/forkserver

    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except ValueError:  # pragma: no cover - non-main-thread embedding
        pass
    while True:
        try:
            item = conn_.recv()
        except (EOFError, OSError):
            break
        if item is None:
            break
        job_id, job_dict = item
        try:
            result = run_job(Job.from_dict(job_dict)).to_dict()
        except BaseException as error:  # noqa: BLE001 - last-resort capture
            result = {
                "schema": JobResult.SCHEMA,
                "status": "error",
                "kind": job_dict.get("kind", "detect"),
                "source_name": job_dict.get("source_name", "<job>"),
                "result": None,
                "error": {"category": "internal",
                          "message": f"worker dispatch failed: {error!r}"},
                "elapsed_s": 0.0, "cached": False, "coalesced": False,
                "worker_pid": None, "timings": None, "counters": None,
                "trace_id": (job_dict.get("trace") or {}).get("trace_id")
                if isinstance(job_dict.get("trace"), dict) else None,
            }
        result["worker_pid"] = os.getpid()
        try:
            conn_.send((job_id, result))
        except (BrokenPipeError, OSError):  # parent went away
            break


class _WorkerHandle:
    """Parent-side view of one worker process."""

    __slots__ = ("process", "conn", "job_id", "started_at",
                 "started_epoch", "deadline")

    def __init__(self, process, conn_) -> None:
        self.process = process
        self.conn = conn_
        self.job_id: Optional[str] = None
        self.started_at: Optional[float] = None
        #: dispatch time on the epoch clock, for trace-log records (the
        #: monotonic ``started_at`` drives deadlines; this one places
        #: the span on the fleet-wide time axis).
        self.started_epoch: Optional[float] = None
        self.deadline: Optional[float] = None

    @property
    def idle(self) -> bool:
        return self.job_id is None

    def assign(self, job_id: str, job: Job) -> None:
        self.job_id = job_id
        self.started_at = time.monotonic()
        self.started_epoch = time.time()
        self.deadline = (self.started_at + job.timeout_s
                         if job.timeout_s else None)
        self.conn.send((job_id, job.to_dict()))

    def clear(self) -> None:
        self.job_id = None
        self.started_at = None
        self.started_epoch = None
        self.deadline = None


class PoolStats:
    """Aggregate counters the server's ``/stats`` and ``/metrics``
    endpoints expose.

    Mutated only under the owning pool's lock; readers must go through
    :meth:`WorkerPool.stats_snapshot` / :meth:`WorkerPool.metrics_snapshot`
    (or otherwise hold the pool lock) — the dicts and sample deques here
    are not safe to iterate while a completion is being recorded.
    """

    #: retained phase-latency samples per phase (ring buffer); bounds a
    #: long-lived server's memory while keeping p50/p95 meaningful.
    MAX_PHASE_SAMPLES = 4096

    def __init__(self) -> None:
        self.submitted = 0
        self.completed = 0
        self.by_status: Dict[str, int] = {}
        self.coalesced = 0
        #: per-kind latency accumulators over executed (non-cached) jobs.
        self.latency: Dict[str, Dict[str, float]] = {}
        #: phase name -> recent per-job latency samples (seconds), from
        #: executed jobs' telemetry timings.
        self.phases: Dict[str, deque] = {}
        #: phase name -> fixed-bucket histogram over the *whole* uptime
        #: (the sample rings above forget; these are exact, mergeable
        #: across nodes, and feed the Prometheus exposition).
        self.histograms: Dict[str, telemetry.Histogram] = {}
        #: summed runtime counters across executed jobs' telemetry.
        self.counters: Dict[str, int] = {}
        self.worker_restarts = 0
        self.worker_timeouts = 0
        self.worker_crashes = 0
        #: jobs whose worker was killed mid-flight (timeout or crash) —
        #: each one also gets an explicit ``truncated`` span in the
        #: trace log instead of silently dropping its in-flight spans.
        self.truncated_spans = 0
        self.started_at = time.monotonic()

    def record(self, result: JobResult) -> None:
        self.completed += 1
        self.by_status[result.status] = \
            self.by_status.get(result.status, 0) + 1
        if result.coalesced:
            self.coalesced += 1
        if not result.cached and not result.coalesced:
            entry = self.latency.setdefault(
                result.kind, {"count": 0, "total_s": 0.0})
            entry["count"] += 1
            entry["total_s"] += result.elapsed_s
            for phase, seconds in (result.timings or {}).items():
                samples = self.phases.get(phase)
                if samples is None:
                    samples = self.phases[phase] = deque(
                        maxlen=self.MAX_PHASE_SAMPLES)
                samples.append(seconds)
                hist = self.histograms.get(phase)
                if hist is None:
                    hist = self.histograms[phase] = telemetry.Histogram()
                hist.observe(seconds)
            for name, value in (result.counters or {}).items():
                self.counters[name] = self.counters.get(name, 0) + value

    def to_dict(self) -> Dict[str, Any]:
        elapsed = max(time.monotonic() - self.started_at, 1e-9)
        latency = {
            kind: {"count": entry["count"],
                   "total_s": round(entry["total_s"], 6),
                   "mean_ms": round(
                       entry["total_s"] / entry["count"] * 1000, 3)
                   if entry["count"] else 0.0}
            for kind, entry in self.latency.items()}
        return {
            "submitted": self.submitted,
            "completed": self.completed,
            "in_flight": self.submitted - self.completed,
            "by_status": dict(self.by_status),
            "coalesced": self.coalesced,
            "uptime_s": round(elapsed, 3),
            "jobs_per_sec": round(self.completed / elapsed, 3),
            "latency": latency,
            "workers": {
                "restarts": self.worker_restarts,
                "timeouts": self.worker_timeouts,
                "crashes": self.worker_crashes,
                "truncated_spans": self.truncated_spans,
            },
        }

    def phases_dict(self) -> Dict[str, Dict[str, Any]]:
        """Per-phase latency summaries (count/mean/p50/p95/max, ms)."""
        from ..telemetry import summarize_samples

        return {phase: summarize_samples(list(samples))
                for phase, samples in sorted(self.phases.items())}

    def histograms_dict(self) -> Dict[str, Dict[str, Any]]:
        """Per-phase fixed-bucket histograms, serialized."""
        return {phase: hist.to_dict()
                for phase, hist in sorted(self.histograms.items())}


class WorkerPool:
    """Shard jobs over worker processes; stream results as they finish.

    Typical batch use::

        with WorkerPool(workers=4, cache=ResultCache()) as pool:
            for job_id, result in pool.run(jobs):
                ...

    Long-lived use (the HTTP server): ``submit`` from any thread, read
    ``status(job_id)`` / ``result(job_id)`` until done.
    """

    def __init__(self, workers: int = 1,
                 cache: Optional[ResultCache] = None,
                 poll_interval_s: float = 0.02,
                 keep_stream: bool = True) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        self.cache = cache
        self.poll_interval_s = poll_interval_s
        self._ctx = multiprocessing.get_context(_pick_start_method())
        self._handles: List[_WorkerHandle] = []
        self._lock = threading.RLock()
        self._pending: deque = deque()              # job ids awaiting dispatch
        self._jobs: Dict[str, Job] = {}
        self._results: Dict[str, JobResult] = {}
        self._running: set = set()
        #: cache-key → owner job id, for every queued/in-flight cacheable
        #: job; twins submitted while the owner is unresolved wait here.
        self._key_owner: Dict[str, str] = {}
        self._waiters: Dict[str, List[str]] = {}
        self._owner_key: Dict[str, str] = {}
        #: job id -> submission epoch, for the ``pool.wait`` trace span
        #: (submit-to-dispatch latency).  Entries die with the job.
        self._submit_epoch: Dict[str, float] = {}
        #: completion stream for run()/next_completed() consumers.
        self._completed: "queue.Queue[Tuple[str, JobResult]]" = queue.Queue()
        self._keep_stream = keep_stream
        self._counter = 0
        self.stats = PoolStats()
        self._stop = threading.Event()
        self._started = False
        self._dispatcher: Optional[threading.Thread] = None

    # -- lifecycle -----------------------------------------------------

    def start(self) -> "WorkerPool":
        if self._started:
            return self
        self._started = True
        self._handles = [self._spawn() for _ in range(self.workers)]
        self._dispatcher = threading.Thread(
            target=self._loop, name="repro-pool-dispatch", daemon=True)
        self._dispatcher.start()
        return self

    def shutdown(self, wait: bool = True) -> None:
        """Stop the dispatcher and the workers.  Pending jobs are
        cancelled; with ``wait`` the in-flight ones finish first."""
        if not self._started:
            return
        self.cancel_pending()
        if wait:
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                with self._lock:
                    if not self._running:
                        break
                time.sleep(self.poll_interval_s)
        self._stop.set()
        if self._dispatcher is not None:
            self._dispatcher.join(timeout=5.0)
        for handle in self._handles:
            try:
                handle.conn.send(None)
            except (BrokenPipeError, OSError):
                pass
        for handle in self._handles:
            handle.process.join(timeout=1.0)
            if handle.process.is_alive():
                handle.process.terminate()
                handle.process.join(timeout=1.0)
            handle.conn.close()
        self._handles = []

    def __enter__(self) -> "WorkerPool":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    # -- submission ----------------------------------------------------

    def submit(self, job: Job) -> str:
        """Enqueue one job; returns its id immediately.

        Cache hits and in-batch twins never reach a worker: hits
        complete here, twins attach to the in-flight owner.
        """
        if not self._started:
            raise RuntimeError("pool is not started")
        with self._lock:
            self._counter += 1
            job_id = f"job-{self._counter:06d}"
            self._jobs[job_id] = job
            self._submit_epoch[job_id] = time.time()
            self.stats.submitted += 1
            key = None
            if self.cache is not None:
                key = self.cache.key_for(job)
                hit = self.cache.lookup(job)
                if hit is not None:
                    self._finish(job_id, hit)
                    return job_id
                owner = self._key_owner.get(key)
                if owner is not None:
                    self._waiters.setdefault(owner, []).append(job_id)
                    return job_id
                self._key_owner[key] = job_id
                self._owner_key[job_id] = key
            self._pending.append(job_id)
        return job_id

    def cancel_pending(self) -> List[str]:
        """Complete every not-yet-dispatched job as ``cancelled``;
        in-flight jobs keep running.  Returns the cancelled ids."""
        with self._lock:
            cancelled = list(self._pending)
            self._pending.clear()
            for job_id in cancelled:
                job = self._jobs[job_id]
                self._finish(job_id, JobResult.interrupted(
                    job, "cancelled", "batch cancelled before dispatch"))
        return cancelled

    # -- consumption ---------------------------------------------------

    def status(self, job_id: str) -> str:
        with self._lock:
            if job_id in self._results:
                return "done"
            if job_id in self._running:
                return "running"
            if job_id in self._jobs:
                return "queued"
            return "unknown"

    def result(self, job_id: str) -> Optional[JobResult]:
        with self._lock:
            return self._results.get(job_id)

    def next_completed(self, timeout: Optional[float] = None
                       ) -> Optional[Tuple[str, JobResult]]:
        """The next finished (job id, result), or ``None`` on timeout."""
        try:
            return self._completed.get(timeout=timeout)
        except queue.Empty:
            return None

    def run(self, jobs: Iterable[Job]
            ) -> Iterator[Tuple[str, Job, JobResult]]:
        """Submit a batch and yield completions as they happen."""
        ids = [self.submit(job) for job in jobs]
        remaining = set(ids)
        while remaining:
            item = self.next_completed(timeout=1.0)
            if item is None:
                continue
            job_id, result = item
            if job_id in remaining:
                remaining.discard(job_id)
                yield job_id, self._jobs[job_id], result

    # -- observability -------------------------------------------------

    def stats_snapshot(self) -> Dict[str, Any]:
        """A point-in-time copy of the pool statistics.

        Taken under the pool lock: :meth:`PoolStats.record` runs with
        the lock held from the completion path, so reading the stats
        dicts without it races dictionary mutation (the HTTP ``/stats``
        handler used to do exactly that).
        """
        with self._lock:
            pool_stats = self.stats.to_dict()
            pool_stats["workers"]["configured"] = self.workers
            pool_stats["workers"]["alive"] = sum(
                1 for h in self._handles if h.process.is_alive())
            pool_stats["workers"]["busy"] = sum(
                1 for h in self._handles if not h.idle)
            snapshot: Dict[str, Any] = {"pool": pool_stats,
                                        "workers": self.workers}
            if self.cache is not None:
                snapshot["cache"] = self.cache.stats_dict()
        return snapshot

    def metrics_snapshot(self) -> Dict[str, Any]:
        """Per-phase latency histograms plus runtime/cache/worker
        counters — the ``/metrics`` payload.  Locked, like
        :meth:`stats_snapshot`."""
        with self._lock:
            metrics: Dict[str, Any] = {
                "phases": self.stats.phases_dict(),
                "histograms": self.stats.histograms_dict(),
                "counters": dict(self.stats.counters),
                "jobs": {
                    "submitted": self.stats.submitted,
                    "completed": self.stats.completed,
                    "coalesced": self.stats.coalesced,
                    "by_status": dict(self.stats.by_status),
                },
                "workers": {
                    "configured": self.workers,
                    "restarts": self.stats.worker_restarts,
                    "timeouts": self.stats.worker_timeouts,
                    "crashes": self.stats.worker_crashes,
                    "truncated_spans": self.stats.truncated_spans,
                },
            }
            if self.cache is not None:
                metrics["cache"] = self.cache.stats_dict()
        return metrics

    # -- internals -----------------------------------------------------

    def _spawn(self) -> _WorkerHandle:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(target=_worker_main,
                                    args=(child_conn,),
                                    name="repro-pool-worker", daemon=True)
        process.start()
        child_conn.close()
        return _WorkerHandle(process, parent_conn)

    def _loop(self) -> None:
        while not self._stop.is_set():
            self._dispatch_ready()
            self._drain_results()
            self._police_workers()

    def _dispatch_ready(self) -> None:
        with self._lock:
            for handle in self._handles:
                if not self._pending:
                    break
                if not handle.idle or not handle.process.is_alive():
                    continue
                job_id = self._pending.popleft()
                job = self._jobs[job_id]
                try:
                    handle.assign(job_id, job)
                except (BrokenPipeError, OSError):
                    # The worker died between polls; put the job back and
                    # let _police_workers replace the corpse.
                    handle.clear()
                    self._pending.appendleft(job_id)
                    continue
                self._running.add(job_id)
                self._trace_dispatch(job_id, job, handle)

    def _drain_results(self) -> None:
        conns = [h.conn for h in self._handles if not h.idle]
        if not conns:
            time.sleep(self.poll_interval_s)
            return
        try:
            ready = connection.wait(conns, timeout=self.poll_interval_s)
        except OSError:
            ready = []
        for conn_ in ready:
            handle = next((h for h in self._handles if h.conn is conn_),
                          None)
            if handle is None:  # pragma: no cover - replaced mid-drain
                continue
            try:
                job_id, result_dict = conn_.recv()
            except (EOFError, OSError):
                continue  # worker died mid-send; _police_workers handles it
            with self._lock:
                if handle.job_id != job_id:  # pragma: no cover - defensive
                    continue
                handle.clear()
                self._finish(job_id, JobResult.from_dict(result_dict))

    def _police_workers(self) -> None:
        """Kill over-deadline workers; replace dead ones; report both."""
        now = time.monotonic()
        with self._lock:
            for index, handle in enumerate(self._handles):
                timed_out = (handle.deadline is not None
                             and now > handle.deadline
                             and not handle.idle)
                died = not handle.process.is_alive()
                if not timed_out and not died:
                    continue
                job_id = handle.job_id
                if timed_out:
                    self.stats.worker_timeouts += 1
                else:
                    self.stats.worker_crashes += 1
                if timed_out and not died:
                    handle.process.kill()
                    handle.process.join(timeout=5.0)
                if job_id is not None:
                    job = self._jobs[job_id]
                    elapsed = now - (handle.started_at or now)
                    if timed_out:
                        outcome = JobResult.interrupted(
                            job, "timeout",
                            f"exceeded {job.timeout_s:.3f}s wall-clock "
                            "budget; worker killed", elapsed_s=elapsed)
                    else:
                        code = handle.process.exitcode
                        outcome = JobResult.interrupted(
                            job, "crashed",
                            f"worker process died (exit code {code})",
                            elapsed_s=elapsed)
                    # The killed worker never got to export its spans;
                    # flush an explicit terminal span from the parent so
                    # the trace ends in `truncated`, not in silence.
                    self._trace_truncated(job, handle, outcome.status)
                    self._finish(job_id, outcome)
                handle.conn.close()
                if not self._stop.is_set():
                    self._handles[index] = self._spawn()
                    self.stats.worker_restarts += 1

    def _trace_dispatch(self, job_id: str, job: Job,
                        handle: _WorkerHandle) -> None:
        """Record the submit-to-dispatch wait as a ``pool.wait`` span."""
        trace = telemetry.TraceContext.from_dict(job.trace)
        log = telemetry.get_tracelog()
        if trace is None or log is None:
            return
        submitted = self._submit_epoch.get(job_id)
        started = handle.started_epoch or time.time()
        try:
            log.span("pool.wait", submitted or started, started,
                     trace.trace_id, parent_id=trace.span_id,
                     job_id=job_id, job=job.source_name,
                     worker_pid=handle.process.pid)
        except Exception:  # pragma: no cover - tracing must not fail jobs
            pass

    def _trace_truncated(self, job: Job, handle: _WorkerHandle,
                         reason: str) -> None:
        """Terminal span for a job whose worker was killed mid-flight.

        The worker exports its session only at job end, so a SIGKILL
        (deadline) or crash loses every in-flight span.  This parent-side
        span — from dispatch to the kill — makes the loss explicit in
        the trace instead of leaving the tree dangling.
        """
        self.stats.truncated_spans += 1
        trace = telemetry.TraceContext.from_dict(job.trace)
        log = telemetry.get_tracelog()
        if trace is None or log is None:
            return
        now = time.time()
        try:
            log.span("truncated", handle.started_epoch or now, now,
                     trace.trace_id, parent_id=trace.span_id,
                     level="warn", reason=reason, job=job.source_name,
                     worker_pid=handle.process.pid,
                     timeout_s=job.timeout_s)
        except Exception:  # pragma: no cover - tracing must not fail jobs
            pass

    def _finish(self, job_id: str, result: JobResult) -> None:
        """Record a completion; store it, publish it, fan out twins.

        Caller holds ``self._lock``.
        """
        self._running.discard(job_id)
        self._submit_epoch.pop(job_id, None)
        trace = telemetry.TraceContext.from_dict(self._jobs[job_id].trace)
        if trace is not None and result.trace_id is None:
            result.trace_id = trace.trace_id
        self._results[job_id] = result
        self.stats.record(result)
        if self._keep_stream:
            self._completed.put((job_id, result))
        key = self._owner_key.pop(job_id, None)
        if key is not None:
            self._key_owner.pop(key, None)
            if self.cache is not None and not result.cached:
                self.cache.put(key, result)
        for waiter_id in self._waiters.pop(job_id, ()):  # in-batch twins
            twin = JobResult.from_dict(result.to_dict())
            twin.coalesced = True
            twin.source_name = self._jobs[waiter_id].source_name
            self._finish(waiter_id, twin)


def run_batch(jobs: Iterable[Job], workers: int = 1,
              cache: Optional[ResultCache] = None
              ) -> Iterator[Tuple[str, Job, JobResult]]:
    """One-shot convenience: run ``jobs`` on a fresh pool, yield
    completions as they stream in, tear the pool down afterwards."""
    with WorkerPool(workers=workers, cache=cache) as pool:
        for item in pool.run(jobs):
            yield item
