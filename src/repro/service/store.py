"""Cache stores: where content-addressed result entries live on disk.

:class:`~repro.service.cache.ResultCache` owns the *keys* (sha256 of
canonical source + semantic job fields) and the in-process memory layer;
a store owns the shared, durable layer behind it.  The interface is
three methods — :meth:`~CacheStore.read`, :meth:`~CacheStore.write`,
:meth:`~CacheStore.count` — so alternative backends (an object store, a
network cache) slot in without touching the cache logic.

:class:`DirectoryStore` is the production backend:

* **Sharded layout.**  Entries live at ``<root>/<key[:2]>/<key>.json``
  — 256 subdirectories, so a million-entry cache never puts a million
  files in one directory, and per-shard scans keep eviction cheap.
  Entries written by older (flat) layouts are still found and are
  migrated to their shard on first rewrite.
* **Multi-node sharing.**  Writes are atomic (temp file +
  ``os.replace``), and keys are content addresses, so any number of
  nodes — processes or hosts on a shared filesystem — read and write
  one store concurrently; racing writers of the same key publish
  identical bytes.
* **Bounded size.**  With ``max_bytes`` set, a write that pushes the
  store over budget evicts least-recently-*used* entries (atime is
  refreshed on every read hit) until it fits.  ``evictions`` counts
  removals for the ``/metrics`` endpoint.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
from typing import Any, Dict, List, Optional, Tuple


class CacheStore:
    """Interface: durable key → entry-dict storage for the cache."""

    #: total entries removed to stay under the size budget.
    evictions = 0

    def read(self, key: str) -> Optional[Dict[str, Any]]:
        raise NotImplementedError

    def write(self, key: str, entry: Dict[str, Any]) -> None:
        raise NotImplementedError

    def count(self) -> int:
        raise NotImplementedError


class DirectoryStore(CacheStore):
    """One JSON file per key under 256 shard subdirectories, with
    optional LRU size bounding.  See the module docstring."""

    #: shard fan-out: first two hex characters of the key.
    SHARD_CHARS = 2

    def __init__(self, path: str, max_bytes: Optional[int] = None) -> None:
        if max_bytes is not None and max_bytes <= 0:
            raise ValueError("max_bytes must be positive (or None)")
        self.path = path
        self.max_bytes = max_bytes
        self.evictions = 0
        #: approximate store size, maintained incrementally; reconciled
        #: against the filesystem lazily (other nodes write too).
        self._size_bytes: Optional[int] = None
        self._lock = threading.Lock()
        os.makedirs(path, exist_ok=True)

    # -- paths ---------------------------------------------------------

    def _shard_file(self, key: str) -> str:
        return os.path.join(self.path, key[:self.SHARD_CHARS],
                            f"{key}.json")

    def _flat_file(self, key: str) -> str:
        """The pre-sharding layout: ``<root>/<key>.json``."""
        return os.path.join(self.path, f"{key}.json")

    # -- CacheStore ----------------------------------------------------

    def read(self, key: str) -> Optional[Dict[str, Any]]:
        for candidate in (self._shard_file(key), self._flat_file(key)):
            try:
                with open(candidate, "r", encoding="utf-8") as handle:
                    entry = json.load(handle)
            except (OSError, ValueError):
                continue
            try:
                # Refresh atime *and* mtime: eviction ranks by mtime
                # (atime is unreliable under relatime/noatime mounts),
                # so a read hit counts as recent use.
                os.utime(candidate, None)
            except OSError:
                pass
            return entry
        return None

    def write(self, key: str, entry: Dict[str, Any]) -> None:
        target = self._shard_file(key)
        shard_dir = os.path.dirname(target)
        payload = json.dumps(entry)
        try:
            os.makedirs(shard_dir, exist_ok=True)
            fd, temp = tempfile.mkstemp(dir=shard_dir, suffix=".tmp")
        except OSError:  # pragma: no cover - disk trouble; best-effort
            return
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(payload)
            os.replace(temp, target)
        except OSError:  # pragma: no cover - disk-full etc.
            try:
                os.unlink(temp)
            except OSError:
                pass
            return
        # Retire the flat-layout twin so it cannot shadow future state.
        try:
            os.unlink(self._flat_file(key))
        except OSError:
            pass
        if self.max_bytes is not None:
            with self._lock:
                if self._size_bytes is not None:
                    self._size_bytes += len(payload)
                self._evict_to_budget()

    def count(self) -> int:
        return sum(1 for _ in self._entries())

    # -- size bounding -------------------------------------------------

    def _entries(self):
        """Yield ``(path, size, mtime)`` for every stored entry, flat
        and sharded."""
        try:
            names = os.listdir(self.path)
        except OSError:
            return
        for name in names:
            full = os.path.join(self.path, name)
            if name.endswith(".json"):
                stat = self._stat(full)
                if stat is not None:
                    yield stat
            elif len(name) == self.SHARD_CHARS and os.path.isdir(full):
                try:
                    inner = os.listdir(full)
                except OSError:
                    continue
                for leaf in inner:
                    if not leaf.endswith(".json"):
                        continue
                    stat = self._stat(os.path.join(full, leaf))
                    if stat is not None:
                        yield stat

    @staticmethod
    def _stat(path: str) -> Optional[Tuple[str, int, float]]:
        try:
            info = os.stat(path)
        except OSError:
            return None
        return path, info.st_size, info.st_mtime

    def size_bytes(self) -> int:
        """The store's current payload size (scans the tree)."""
        return sum(size for _path, size, _mtime in self._entries())

    def _evict_to_budget(self) -> None:
        """Drop least-recently-used entries until under ``max_bytes``.
        Caller holds ``self._lock``."""
        assert self.max_bytes is not None
        if self._size_bytes is not None \
                and self._size_bytes <= self.max_bytes:
            return
        entries: List[Tuple[str, int, float]] = list(self._entries())
        total = sum(size for _p, size, _m in entries)
        if total <= self.max_bytes:
            self._size_bytes = total
            return
        entries.sort(key=lambda item: item[2])  # oldest mtime first
        for path, size, _mtime in entries:
            try:
                os.unlink(path)
            except OSError:
                continue
            total -= size
            self.evictions += 1
            if total <= self.max_bytes:
                break
        self._size_bytes = total


class NullStore(CacheStore):
    """No durable layer: the cache is memory-only."""

    def read(self, key: str) -> Optional[Dict[str, Any]]:
        return None

    def write(self, key: str, entry: Dict[str, Any]) -> None:
        return None

    def count(self) -> int:
        return 0


def open_store(path: Optional[str],
               max_mb: Optional[float] = None) -> CacheStore:
    """The store for a cache directory: ``None`` path → memory only;
    ``max_mb`` bounds the on-disk size with LRU eviction."""
    if path is None:
        if max_mb is not None:
            raise ValueError("max_mb requires a cache directory")
        return NullStore()
    max_bytes = None if max_mb is None else int(max_mb * 1024 * 1024)
    return DirectoryStore(path, max_bytes=max_bytes)


__all__ = ["CacheStore", "DirectoryStore", "NullStore", "open_store"]
