"""Batch repair service: jobs, pool, cache, durable queue, HTTP server.

This subpackage turns the single-shot pipeline (one program per process,
via :mod:`repro.cli`) into a concurrent — and, with the queue tier, a
distributed and durable — job runner:

* :mod:`~repro.service.jobs` — the typed :class:`Job`/:class:`JobResult`
  model with structured JSON serialization and faithful error capture;
* :mod:`~repro.service.pool` — a multiprocessing worker pool with
  streaming results, per-job wall-clock timeouts, crash containment and
  graceful cancellation;
* :mod:`~repro.service.cache` — a content-addressed result cache keyed
  on the canonical (parse → pretty-print) source text;
* :mod:`~repro.service.store` — the cache's durable layer: sharded
  one-file-per-key stores with optional LRU size bounding, shared by
  every node pointed at the same directory;
* :mod:`~repro.service.queue` — a SQLite-WAL persistent job queue with
  leases, heartbeats, retry budgets and fenced exactly-once completion;
* :mod:`~repro.service.node` — a queue worker node (claim → pool →
  complete), N of which drain one queue concurrently;
* :mod:`~repro.service.auth` — bearer-token auth and per-tenant
  token-bucket rate limiting for the HTTP front-end;
* :mod:`~repro.service.server` — the ``repro serve`` HTTP front-end
  (submit/poll/SSE progress/healthz/stats/metrics).

Typical batch use::

    from repro.service import Job, ResultCache, run_batch
    jobs = [Job("repair", source, source_name=name, args=(40,))
            for name, source in corpus]
    for job_id, job, result in run_batch(jobs, workers=4,
                                         cache=ResultCache()):
        print(result.describe())

Typical multi-node use: ``repro queue submit`` + N × ``repro serve
--queue`` against one queue file (see DESIGN.md §13).
"""

from .auth import RateLimiter, TokenBucket, check_bearer, tenant_of
from .cache import CacheStats, ResultCache, canonical_source
from .jobs import JOB_KINDS, Job, JobResult, run_job
from .node import QueueWorker
from .pool import PoolStats, WorkerPool, run_batch
from .queue import (
    JobQueue,
    QueueError,
    batch_dedupe_key,
    derive_batch_id,
)
from .server import ServiceServer, serve
from .store import CacheStore, DirectoryStore, NullStore, open_store

__all__ = [
    "JOB_KINDS",
    "Job",
    "JobResult",
    "run_job",
    "CacheStats",
    "ResultCache",
    "canonical_source",
    "CacheStore",
    "DirectoryStore",
    "NullStore",
    "open_store",
    "PoolStats",
    "WorkerPool",
    "run_batch",
    "JobQueue",
    "QueueError",
    "batch_dedupe_key",
    "derive_batch_id",
    "QueueWorker",
    "RateLimiter",
    "TokenBucket",
    "check_bearer",
    "tenant_of",
    "ServiceServer",
    "serve",
]
