"""Batch repair service: jobs, worker pool, result cache, HTTP server.

This subpackage turns the single-shot pipeline (one program per process,
via :mod:`repro.cli`) into a concurrent job runner:

* :mod:`~repro.service.jobs` — the typed :class:`Job`/:class:`JobResult`
  model with structured JSON serialization and faithful error capture;
* :mod:`~repro.service.pool` — a multiprocessing worker pool with
  streaming results, per-job wall-clock timeouts, crash containment and
  graceful cancellation;
* :mod:`~repro.service.cache` — a content-addressed result cache keyed
  on the canonical (parse → pretty-print) source text;
* :mod:`~repro.service.server` — the ``repro serve`` HTTP front-end.

Typical batch use::

    from repro.service import Job, ResultCache, run_batch
    jobs = [Job("repair", source, source_name=name, args=(40,))
            for name, source in corpus]
    for job_id, job, result in run_batch(jobs, workers=4,
                                         cache=ResultCache()):
        print(result.describe())
"""

from .cache import CacheStats, ResultCache, canonical_source
from .jobs import JOB_KINDS, Job, JobResult, run_job
from .pool import PoolStats, WorkerPool, run_batch
from .server import ServiceServer, serve

__all__ = [
    "JOB_KINDS",
    "Job",
    "JobResult",
    "run_job",
    "CacheStats",
    "ResultCache",
    "canonical_source",
    "PoolStats",
    "WorkerPool",
    "run_batch",
    "ServiceServer",
    "serve",
]
