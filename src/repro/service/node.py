"""A queue worker node: claim → execute on the pool → complete.

One :class:`QueueWorker` is one *node* of the distributed service tier:
it opens the shared :class:`~repro.service.queue.JobQueue`, leases jobs,
runs them on its private :class:`~repro.service.pool.WorkerPool`
(timeouts, crash containment and the content-addressed cache all come
along for free), heartbeats every in-flight lease at a third of the
lease duration, and publishes each result through the queue's fenced
``complete``.  Run N of these against one queue file — in threads,
processes or separate ``repro serve --queue`` invocations — and the
queue's lease protocol guarantees each job lands exactly once even when
nodes are SIGKILL'd mid-run (see :mod:`repro.service.queue`).

Sharing the result cache across nodes is just pointing every node's
``ResultCache`` at the same store directory: the keys are content
addresses (sha256 of canonical source + semantic knobs), so a hit
computed by node A is valid verbatim on node B.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Any, Dict, Optional, Tuple, Union

from .. import telemetry
from .cache import ResultCache
from .jobs import JobResult
from .pool import WorkerPool
from .queue import JobQueue


class QueueWorker:
    """Pull jobs from a shared queue onto a local worker pool.

    ``queue`` is a :class:`JobQueue` or a path to one.  ``claim_ahead``
    bounds how many leases the node holds beyond busy workers (0 keeps
    leases minimal; 1-2 hides claim latency).
    """

    def __init__(self, queue: Union[JobQueue, str], workers: int = 1,
                 cache: Optional[ResultCache] = None,
                 node_id: Optional[str] = None,
                 lease_s: Optional[float] = None,
                 poll_s: float = 0.05, claim_ahead: int = 1) -> None:
        self.queue = queue if isinstance(queue, JobQueue) \
            else JobQueue(queue)
        self.lease_s = lease_s if lease_s is not None else self.queue.lease_s
        self.node_id = node_id or f"node-{os.getpid()}"
        self.poll_s = poll_s
        self.claim_ahead = max(0, claim_ahead)
        self.pool = WorkerPool(workers=workers, cache=cache,
                               keep_stream=True)
        #: pool job id -> queue id, for every lease this node holds.
        self._in_flight: Dict[str, int] = {}
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._last_heartbeat = 0.0
        #: node-level counters (the ``/healthz`` and ``/stats`` extras).
        self.completed = 0
        self.lost_leases = 0
        self.released = 0
        self.heartbeats_sent = 0
        self.heartbeats_missed = 0

    # -- lifecycle -----------------------------------------------------

    def start(self) -> "QueueWorker":
        """Run the node loop in a background thread (the serve mode)."""
        if self._thread is not None:
            return self
        self._export_node_env()
        self.pool.start()
        self._thread = threading.Thread(target=self._run_loop,
                                        name="repro-queue-node", daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop claiming, drain in-flight jobs, shut the pool down.
        Leases the node still holds un-completed are released back to
        the queue (attempt refunded) rather than left to expire."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=30.0)
            self._thread = None
        # Let anything the pool already finished land first.
        self._drain_completions(block=False)
        self.pool.shutdown(wait=True)
        self._drain_completions(block=False)
        with self._lock:
            leftovers = list(self._in_flight.items())
            self._in_flight.clear()
        for _pool_id, queue_id in leftovers:
            if self.queue.release(queue_id, self.node_id):
                self.released += 1

    def __enter__(self) -> "QueueWorker":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- batch mode ----------------------------------------------------

    def run_until_drained(self, batch_id: Optional[str] = None,
                          idle_timeout_s: Optional[float] = None) -> int:
        """Process jobs until the queue (or one batch) has none left
        queued or leased — by this node *or any other*; a multi-node
        batch returns when the last node finishes its last job.
        Returns how many jobs this node completed.  ``idle_timeout_s``
        bounds how long to wait on work leased elsewhere."""
        self._export_node_env()
        self.pool.start()
        completed_before = self.completed
        idle_since: Optional[float] = None
        while True:
            progressed = self._step()
            with self._lock:
                busy = bool(self._in_flight)
            if not busy and self.queue.unfinished(batch_id) == 0:
                break
            if progressed or busy:
                idle_since = None
            else:
                # Nothing claimable and nothing local: another node
                # holds the remaining leases.
                now = time.monotonic()
                if idle_since is None:
                    idle_since = now
                elif (idle_timeout_s is not None
                      and now - idle_since > idle_timeout_s):
                    break
                time.sleep(self.poll_s)
        self.pool.shutdown(wait=True)
        self._drain_completions(block=False)
        return self.completed - completed_before

    def _export_node_env(self) -> None:
        """Publish this node's id for the trace log *before* the pool
        forks, so worker-emitted records land in this node's lane.  An
        id already in the environment (the subprocess entry points set
        one) wins — never clobber another node's lane from a thread."""
        os.environ.setdefault("REPRO_NODE_ID", self.node_id)

    # -- the node loop -------------------------------------------------

    def _run_loop(self) -> None:
        while not self._stop.is_set():
            if not self._step():
                time.sleep(self.poll_s)

    def _step(self) -> bool:
        """One scheduling round: land completions, heartbeat leases,
        claim new work.  Returns whether anything happened."""
        progressed = self._drain_completions(block=False)
        self._heartbeat_leases()
        progressed |= self._claim_ready()
        if not progressed:
            # Block briefly on the completion stream instead of spinning.
            progressed = self._drain_completions(block=True)
        return progressed

    def _capacity(self) -> int:
        with self._lock:
            return (self.pool.workers + self.claim_ahead
                    - len(self._in_flight))

    def _claim_ready(self) -> bool:
        claimed_any = False
        while self._capacity() > 0 and not self._stop.is_set():
            item = self.queue.claim(self.node_id, lease_s=self.lease_s)
            if item is None:
                break
            queue_id, job, attempt = item
            self._trace_claim(queue_id, job, attempt)
            pool_id = self.pool.submit(job)
            with self._lock:
                self._in_flight[pool_id] = queue_id
            claimed_any = True
        return claimed_any

    def _trace_claim(self, queue_id: int, job, attempt: int) -> None:
        """Record the enqueue-to-lease wait as a ``queue.wait`` span."""
        trace = telemetry.TraceContext.from_dict(job.trace)
        log = telemetry.get_tracelog()
        if trace is None or log is None:
            return
        now = time.time()
        row = self.queue.status(queue_id)
        enqueued = (row or {}).get("enqueued_at") or now
        try:
            log.span("queue.wait", enqueued, now, trace.trace_id,
                     parent_id=trace.span_id, queue_id=queue_id,
                     attempt=attempt, node_id=self.node_id,
                     job=job.source_name)
        except Exception:  # pragma: no cover - tracing must not fail jobs
            pass

    def _heartbeat_leases(self) -> None:
        now = time.monotonic()
        if now - self._last_heartbeat < self.lease_s / 3.0:
            return
        self._last_heartbeat = now
        with self._lock:
            held = list(self._in_flight.items())
        for _pool_id, queue_id in held:
            if self.queue.heartbeat(queue_id, self.node_id,
                                    lease_s=self.lease_s):
                self.heartbeats_sent += 1
            else:
                # Lease gone: the job expired here and was re-claimed
                # elsewhere.  Keep running — the result still feeds the
                # shared cache — but completion will be fenced out.
                self.heartbeats_missed += 1
                self.lost_leases += 1

    def _drain_completions(self, block: bool) -> bool:
        landed = False
        timeout: Optional[float] = self.poll_s if block else 0.0
        while True:
            item = self.pool.next_completed(timeout=timeout)
            if item is None:
                return landed
            timeout = 0.0
            pool_id, result = item
            with self._lock:
                queue_id = self._in_flight.pop(pool_id, None)
            if queue_id is None:
                continue  # not ours (defensive)
            landed = True
            self._land(queue_id, result)

    def _land(self, queue_id: int, result: JobResult) -> None:
        if result.status == "cancelled":
            # Pool-side cancellation (node shutting down): hand the job
            # back instead of consuming it with a non-answer.
            if self.queue.release(queue_id, self.node_id):
                self.released += 1
            return
        if self.queue.complete(queue_id, self.node_id, result):
            self.completed += 1
        else:
            self.lost_leases += 1

    # -- observability -------------------------------------------------

    def stats_snapshot(self) -> Dict[str, Any]:
        with self._lock:
            in_flight = len(self._in_flight)
        return {
            "node_id": self.node_id,
            "in_flight": in_flight,
            "completed": self.completed,
            "lost_leases": self.lost_leases,
            "released": self.released,
            "heartbeats_sent": self.heartbeats_sent,
            "heartbeats_missed": self.heartbeats_missed,
            "queue": self.queue.counts(),
        }


def _node_entry(queue_path: str, workers: int, cache_dir: Optional[str],
                node_id: str, lease_s: float,
                cache_max_mb: Optional[float] = None) -> int:
    """Run one node to drain (the subprocess entry used by the crash
    tests, ``scripts/queue_ci.py`` and the bench): a real OS process
    whose SIGKILL mid-batch is the fault the lease protocol absorbs."""
    cache = ResultCache(cache_dir, max_mb=cache_max_mb) \
        if cache_dir else None
    worker = QueueWorker(queue_path, workers=workers, cache=cache,
                         node_id=node_id, lease_s=lease_s)
    done = worker.run_until_drained()
    print(f"{node_id}: completed {done} job(s)")
    return 0


def main(argv=None) -> int:  # pragma: no cover - exercised as subprocess
    """``python -m repro.service.node --queue q.db`` — a bare node."""
    import argparse

    parser = argparse.ArgumentParser(description="repro queue worker node")
    parser.add_argument("--queue", required=True)
    parser.add_argument("--workers", type=int, default=1)
    parser.add_argument("--cache-dir", default=None)
    parser.add_argument("--cache-max-mb", type=float, default=None)
    parser.add_argument("--node-id", default=None)
    parser.add_argument("--lease", type=float, default=None)
    parser.add_argument("--trace-log", default=None,
                        help="append distributed-trace records to this "
                             "JSONL file (one per node)")
    options = parser.parse_args(argv)
    node_id = options.node_id or f"node-{os.getpid()}"
    if options.trace_log:
        telemetry.set_tracelog(options.trace_log, node=node_id)
    queue = JobQueue(options.queue)
    return _node_entry(options.queue, options.workers, options.cache_dir,
                       node_id,
                       options.lease if options.lease else queue.lease_s,
                       options.cache_max_mb)


if __name__ == "__main__":  # pragma: no cover
    import sys

    sys.exit(main())
