"""Content-addressed result cache for batch jobs.

The classroom workload of the paper's §7.4 — grade 75 homework
submissions — is full of duplicates: most students make one of a handful
of mistakes, and many submissions differ only in whitespace, comments or
formatting.  The cache exploits that by keying each job on the SHA-256 of
its *canonical* source (parse → pretty-print, which normalizes layout and
drops comments) combined with the job's semantic knobs (kind, detector
algorithm, engine, entry arguments, ...; see
:meth:`repro.service.jobs.Job.semantic_fields`).  Two jobs share an entry
exactly when the repair pipeline is guaranteed to treat them identically:

* whitespace / comment / formatting variants of one program **hit**
  (identical ASTs pretty-print identically);
* any semantic edit — an inserted ``finish``, a renamed variable, a
  changed constant — **misses** (the canonical text differs).

Sources that do not even parse fall back to a key over the raw bytes:
their (deterministic) lex/parse error results are still cacheable, but no
normalization is possible.

Entries live in two layers: an in-process memory dict (the L1 — always
on, immutable entries, lives as long as the process) and, when a
directory is given, a durable :class:`~repro.service.store.CacheStore`
(the L2 — sharded one-file-per-key JSON written atomically), so caches
survive across processes *and are shared across nodes*: the keys are
content addresses, so every ``repro serve --queue`` node pointed at the
same store directory serves every other node's hits verbatim.  The L2
can be size-bounded (``max_mb``) with least-recently-used eviction; see
:mod:`repro.service.store`.  Only deterministic results are stored
(``JobResult.is_deterministic``): timeouts, crashes and cancellations
always re-execute.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, Optional

from .jobs import Job, JobResult
from .store import CacheStore, NullStore, open_store


def canonical_source(source: str, source_name: str = "<cache>") -> str:
    """The layout-normalized form of a program: parse, then pretty-print.

    Raises the usual lex/parse errors for malformed input — callers fall
    back to the raw text.
    """
    from ..lang import parse, pretty

    return pretty(parse(source, source_name=source_name))


class CacheStats:
    """Counters one cache instance accumulates (in memory only)."""

    __slots__ = ("hits", "misses", "stores", "rejected")

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.stores = 0
        #: completed results that were not cacheable (timeout, crash, ...)
        self.rejected = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {"hits": self.hits, "misses": self.misses,
                "stores": self.stores, "rejected": self.rejected,
                "hit_rate": round(self.hit_rate, 4)}


class ResultCache:
    """Content-addressed store of :class:`JobResult` dictionaries.

    ``path=None`` keeps everything in memory; otherwise ``path`` is a
    directory managed by a :class:`~repro.service.store.DirectoryStore`
    (sharded one-file-per-key JSON) that any number of processes and
    nodes share.  ``max_mb`` bounds the directory with LRU eviction.
    A pre-built ``store`` overrides both.
    """

    #: bumped whenever the key derivation or the result payload schema
    #: changes incompatibly; part of every key, so stale stores are
    #: simply never hit rather than misread.
    KEY_SCHEMA = 1

    def __init__(self, path: Optional[str] = None,
                 max_mb: Optional[float] = None,
                 store: Optional[CacheStore] = None) -> None:
        self.path = path
        self.store = store if store is not None \
            else open_store(path, max_mb=max_mb)
        self._memory: Dict[str, Dict[str, Any]] = {}
        self.stats = CacheStats()

    # -- keys ----------------------------------------------------------

    def key_for(self, job: Job) -> str:
        """The content address of a job: canonical source + semantics."""
        try:
            text = canonical_source(job.source, job.source_name)
            basis = "canonical"
        except Exception:
            text = job.source
            basis = "raw"
        material = json.dumps({
            "schema": [self.KEY_SCHEMA, JobResult.SCHEMA],
            "basis": basis,
            "source_sha256": hashlib.sha256(
                text.encode("utf-8")).hexdigest(),
            "job": job.semantic_fields(),
        }, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(material.encode("utf-8")).hexdigest()

    # -- lookups -------------------------------------------------------

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The stored result dict for ``key``, or ``None`` on a miss."""
        entry = self._memory.get(key)
        if entry is None:
            entry = self.store.read(key)
            if entry is not None and entry.get("schema") != JobResult.SCHEMA:
                entry = None
            if entry is not None:
                self._memory[key] = entry
        if entry is None:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        # A copy, so callers annotating the result (cached=True, worker
        # pid) never mutate the stored entry.
        return json.loads(json.dumps(entry))

    def put(self, key: str, result: JobResult) -> bool:
        """Store a completed result; returns False (and stores nothing)
        for non-deterministic outcomes."""
        if not result.is_deterministic:
            self.stats.rejected += 1
            return False
        entry = result.to_dict()
        # Strip the execution-instance fields: a cache entry answers
        # "what does this job produce", not "who computed it when".
        entry["cached"] = False
        entry["coalesced"] = False
        entry["worker_pid"] = None
        entry["trace_id"] = None
        self._memory[key] = entry
        self.store.write(key, entry)
        self.stats.stores += 1
        return True

    def lookup(self, job: Job) -> Optional[JobResult]:
        """``get`` + rehydration: the result for ``job`` marked as a
        cache hit, or ``None``."""
        entry = self.get(self.key_for(job))
        if entry is None:
            return None
        hit = JobResult.from_dict(entry)
        hit.cached = True
        # The entry may have been computed for a different file with the
        # same canonical content; the result belongs to *this* job.
        hit.source_name = job.source_name
        return hit

    def __len__(self) -> int:
        if isinstance(self.store, NullStore):
            return len(self._memory)
        return self.store.count()

    def stats_dict(self) -> Dict[str, Any]:
        """Counters plus store-level facts (entry count, evictions) —
        the ``/stats`` and ``/metrics`` cache block."""
        data = self.stats.to_dict()
        data["entries"] = len(self)
        data["evictions"] = self.store.evictions
        return data
