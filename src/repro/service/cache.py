"""Content-addressed result cache for batch jobs.

The classroom workload of the paper's §7.4 — grade 75 homework
submissions — is full of duplicates: most students make one of a handful
of mistakes, and many submissions differ only in whitespace, comments or
formatting.  The cache exploits that by keying each job on the SHA-256 of
its *canonical* source (parse → pretty-print, which normalizes layout and
drops comments) combined with the job's semantic knobs (kind, detector
algorithm, engine, entry arguments, ...; see
:meth:`repro.service.jobs.Job.semantic_fields`).  Two jobs share an entry
exactly when the repair pipeline is guaranteed to treat them identically:

* whitespace / comment / formatting variants of one program **hit**
  (identical ASTs pretty-print identically);
* any semantic edit — an inserted ``finish``, a renamed variable, a
  changed constant — **misses** (the canonical text differs).

Sources that do not even parse fall back to a key over the raw bytes:
their (deterministic) lex/parse error results are still cacheable, but no
normalization is possible.

Entries live in memory and, when a directory is given, as one JSON file
per key (written atomically) so caches survive across processes — worker
pools and repeated CLI invocations share the same store.  Only
deterministic results are stored (``JobResult.is_deterministic``):
timeouts, crashes and cancellations always re-execute.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from typing import Any, Dict, Optional

from .jobs import Job, JobResult


def canonical_source(source: str, source_name: str = "<cache>") -> str:
    """The layout-normalized form of a program: parse, then pretty-print.

    Raises the usual lex/parse errors for malformed input — callers fall
    back to the raw text.
    """
    from ..lang import parse, pretty

    return pretty(parse(source, source_name=source_name))


class CacheStats:
    """Counters one cache instance accumulates (in memory only)."""

    __slots__ = ("hits", "misses", "stores", "rejected")

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.stores = 0
        #: completed results that were not cacheable (timeout, crash, ...)
        self.rejected = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {"hits": self.hits, "misses": self.misses,
                "stores": self.stores, "rejected": self.rejected,
                "hit_rate": round(self.hit_rate, 4)}


class ResultCache:
    """Content-addressed store of :class:`JobResult` dictionaries.

    ``path=None`` keeps everything in memory; otherwise ``path`` is a
    directory holding one ``<key>.json`` file per entry plus nothing
    else, so it can be inspected, pruned or deleted freely.
    """

    #: bumped whenever the key derivation or the result payload schema
    #: changes incompatibly; part of every key, so stale stores are
    #: simply never hit rather than misread.
    KEY_SCHEMA = 1

    def __init__(self, path: Optional[str] = None) -> None:
        self.path = path
        if path is not None:
            os.makedirs(path, exist_ok=True)
        self._memory: Dict[str, Dict[str, Any]] = {}
        self.stats = CacheStats()

    # -- keys ----------------------------------------------------------

    def key_for(self, job: Job) -> str:
        """The content address of a job: canonical source + semantics."""
        try:
            text = canonical_source(job.source, job.source_name)
            basis = "canonical"
        except Exception:
            text = job.source
            basis = "raw"
        material = json.dumps({
            "schema": [self.KEY_SCHEMA, JobResult.SCHEMA],
            "basis": basis,
            "source_sha256": hashlib.sha256(
                text.encode("utf-8")).hexdigest(),
            "job": job.semantic_fields(),
        }, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(material.encode("utf-8")).hexdigest()

    # -- lookups -------------------------------------------------------

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The stored result dict for ``key``, or ``None`` on a miss."""
        entry = self._memory.get(key)
        if entry is None and self.path is not None:
            entry = self._read_disk(key)
            if entry is not None:
                self._memory[key] = entry
        if entry is None:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        # A copy, so callers annotating the result (cached=True, worker
        # pid) never mutate the stored entry.
        return json.loads(json.dumps(entry))

    def put(self, key: str, result: JobResult) -> bool:
        """Store a completed result; returns False (and stores nothing)
        for non-deterministic outcomes."""
        if not result.is_deterministic:
            self.stats.rejected += 1
            return False
        entry = result.to_dict()
        # Strip the execution-instance fields: a cache entry answers
        # "what does this job produce", not "who computed it when".
        entry["cached"] = False
        entry["coalesced"] = False
        entry["worker_pid"] = None
        self._memory[key] = entry
        if self.path is not None:
            self._write_disk(key, entry)
        self.stats.stores += 1
        return True

    def lookup(self, job: Job) -> Optional[JobResult]:
        """``get`` + rehydration: the result for ``job`` marked as a
        cache hit, or ``None``."""
        entry = self.get(self.key_for(job))
        if entry is None:
            return None
        hit = JobResult.from_dict(entry)
        hit.cached = True
        # The entry may have been computed for a different file with the
        # same canonical content; the result belongs to *this* job.
        hit.source_name = job.source_name
        return hit

    def __len__(self) -> int:
        if self.path is None:
            return len(self._memory)
        return sum(1 for name in os.listdir(self.path)
                   if name.endswith(".json"))

    # -- disk ----------------------------------------------------------

    def _file_for(self, key: str) -> str:
        return os.path.join(self.path, f"{key}.json")

    def _read_disk(self, key: str) -> Optional[Dict[str, Any]]:
        try:
            with open(self._file_for(key), "r", encoding="utf-8") as handle:
                entry = json.load(handle)
        except (OSError, ValueError):
            return None
        if entry.get("schema") != JobResult.SCHEMA:
            return None
        return entry

    def _write_disk(self, key: str, entry: Dict[str, Any]) -> None:
        # Atomic publish: concurrent writers of the same key (identical
        # deterministic results) race harmlessly to the same content.
        fd, temp = tempfile.mkstemp(dir=self.path, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(entry, handle)
            os.replace(temp, self._file_for(key))
        except OSError:  # pragma: no cover - disk-full etc.; cache is best-effort
            try:
                os.unlink(temp)
            except OSError:
                pass
