"""``repro serve`` — the HTTP front-end over the pool and the queue.

Endpoints, JSON in and out (SSE for the event stream):

``POST /jobs``
    Submit a batch.  Body: ``{"jobs": [<job dict>, ...]}`` (or a single
    job dict); each job dict is :meth:`repro.service.jobs.Job.to_dict`
    shaped — ``kind`` and ``source`` required, everything else optional.
    Response: ``{"ids": [...], "submitted": N}``, HTTP 202.  Without
    ``--queue`` the jobs go straight to this node's worker pool; with it
    they land in the shared durable queue, where *any* node may execute
    them.  Mutating endpoints honour ``--auth-token`` (401 without the
    matching ``Authorization: Bearer``) and the per-tenant token-bucket
    rate limit (429 when a tenant's bucket is empty).

``GET /jobs/<id>``
    Poll one job: ``{"id", "status": queued|running|done|unknown,
    "result": <JobResult dict> | null}``.  Queue-backed jobs also carry
    ``queue_state`` (queued/leased/done/failed/cancelled) and
    ``attempts``.

``GET /jobs/<id>/events``
    Server-sent events (``text/event-stream``): a ``status`` event per
    state transition, then — on completion — one ``phase`` event per
    pipeline phase the job's telemetry spans recorded (name + total
    milliseconds), a final ``result`` event with the full JobResult, and
    stream end.  ``curl -N`` renders live progress.

``GET /healthz``
    Readiness for load balancers: 200 with ``{"status": "ok"}`` when
    the queue (if attached) answers and at least one worker process is
    alive; 503 with the failing component otherwise.

``GET /stats``, ``GET /metrics``
    Pool throughput / telemetry aggregation, as before, extended with
    queue state counts, node lease counters and rate-limiter counters.
    Snapshots are taken under the pool lock — the completion path
    mutates the stats dicts with the lock held.

Every non-stream response, including handler- and ``http.server``-
generated errors, is JSON with an explicit ``Content-Length``
(keep-alive clients depend on it); the SSE stream is the one
``Connection: close`` path.
"""

from __future__ import annotations

import json
import signal
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, Optional, Tuple, Union
from urllib.parse import parse_qs, urlsplit

from .. import telemetry
from .auth import RateLimiter, check_bearer, tenant_of
from .cache import ResultCache
from .jobs import Job, JobResult
from .node import QueueWorker
from .pool import WorkerPool
from .queue import JobQueue

#: refuse request bodies beyond this many bytes (a submission of the
#: whole student corpus is ~100 KiB; 16 MiB is generous headroom).
MAX_BODY_BYTES = 16 * 1024 * 1024

#: SSE polling cadence and hard stream bound (a watchdog against
#: orphaned streams; clients re-connect).
EVENTS_POLL_S = 0.05
EVENTS_MAX_S = 3600.0

#: queue state → the public job-status vocabulary.
_QUEUE_STATUS = {"queued": "queued", "leased": "running", "done": "done",
                 "failed": "done", "cancelled": "done"}


class ServiceHandler(BaseHTTPRequestHandler):
    """Request handler bound to the server's pool via ``self.server``."""

    server_version = "repro-serve/2.0"
    protocol_version = "HTTP/1.1"

    # -- plumbing ------------------------------------------------------

    @property
    def pool(self) -> WorkerPool:
        return self.server.pool  # type: ignore[attr-defined]

    @property
    def queue(self) -> Optional[JobQueue]:
        return self.server.queue  # type: ignore[attr-defined]

    @property
    def service(self) -> "ServiceServer":
        return self.server.service  # type: ignore[attr-defined]

    def log_message(self, format: str, *args: Any) -> None:
        if getattr(self.server, "verbose", False):  # pragma: no cover
            super().log_message(format, *args)

    def _send_json(self, status: int, payload: Dict[str, Any]) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_text(self, status: int, text: str,
                   content_type: str = "text/plain; charset=utf-8"
                   ) -> None:
        body = text.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _error(self, status: int, message: str) -> None:
        self._send_json(status, {"error": message})

    def send_error(self, code: int, message: Optional[str] = None,
                   explain: Optional[str] = None) -> None:
        """Replace ``http.server``'s HTML error pages (malformed request
        line, unsupported method, ...) with the same JSON-plus-explicit-
        Content-Length shape every other response uses."""
        short = message
        if not short:
            short, _ = self.responses.get(code, ("error", ""))
        self._send_json(code, {"error": short})

    def _read_body(self) -> Optional[bytes]:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            self._error(400, "a JSON request body is required")
            return None
        if length > MAX_BODY_BYTES:
            self._error(413, f"request body exceeds {MAX_BODY_BYTES} bytes")
            return None
        return self.rfile.read(length)

    def _gate_mutation(self) -> Optional[str]:
        """Auth + rate-limit check for mutating endpoints.  Returns the
        tenant identity when the request may proceed, ``None`` after an
        error response has been sent."""
        service = self.service
        if not check_bearer(self.headers.get("Authorization"),
                            service.auth_token):
            self._error(401, "missing or invalid bearer token")
            return None
        tenant = tenant_of(self.headers, self.client_address[0],
                           service.auth_token)
        if not service.rate_limiter.allow(tenant):
            self._error(429, "rate limit exceeded for this tenant")
            return None
        return tenant

    # -- routes --------------------------------------------------------

    def do_POST(self) -> None:  # noqa: N802 - http.server naming
        if self.path.rstrip("/") != "/jobs":
            self._error(404, f"no such endpoint: POST {self.path}")
            return
        tenant = self._gate_mutation()
        if tenant is None:
            return
        body = self._read_body()
        if body is None:
            return
        try:
            payload = json.loads(body)
        except ValueError as error:
            self._error(400, f"invalid JSON: {error}")
            return
        if isinstance(payload, dict) and "jobs" in payload:
            entries = payload["jobs"]
        elif isinstance(payload, dict):
            entries = [payload]
        else:
            entries = payload
        if not isinstance(entries, list) or not entries:
            self._error(400, "expected {'jobs': [...]} with at least one job")
            return
        jobs: List[Job] = []
        for index, entry in enumerate(entries):
            try:
                jobs.append(Job.from_dict(entry))
            except (TypeError, ValueError) as error:
                self._error(400, f"job #{index}: {error}")
                return
        # Mint a trace context per job (unless the submitter sent one):
        # the submit span below is the root every downstream hop —
        # queue.wait, pool.wait, the worker's phases — parents to.
        submitted_at = time.time()
        for job in jobs:
            if telemetry.TraceContext.from_dict(job.trace) is None:
                job.trace = telemetry.TraceContext.mint().to_dict()
        if self.queue is not None:
            ids: List[Any] = [self.queue.submit(job, tenant=tenant)
                              for job in jobs]
        else:
            ids = [self.pool.submit(job) for job in jobs]
        log = telemetry.get_tracelog()
        if log is not None:
            done = time.time()
            for job, job_id in zip(jobs, ids):
                trace = telemetry.TraceContext.from_dict(job.trace)
                try:
                    log.span("submit", submitted_at, done, trace.trace_id,
                             span_id=trace.span_id, job=job.source_name,
                             job_id=str(job_id), tenant=tenant)
                except Exception:  # pragma: no cover - tracing is best-effort
                    pass
        self._send_json(202, {"ids": ids, "submitted": len(ids)})

    def do_GET(self) -> None:  # noqa: N802 - http.server naming
        parts = urlsplit(self.path)
        query = parse_qs(parts.query)
        path = parts.path.rstrip("/") or "/"
        if path == "/healthz":
            self._serve_healthz()
            return
        if path == "/stats":
            self._send_json(200, self.service.stats_snapshot())
            return
        if path == "/metrics":
            metrics = self.service.metrics_snapshot()
            fmt = (query.get("format") or ["json"])[0]
            if fmt == "prometheus":
                self._send_text(
                    200, telemetry.render_prometheus(metrics),
                    content_type="text/plain; version=0.0.4; "
                                 "charset=utf-8")
            elif fmt == "json":
                self._send_json(200, metrics)
            else:
                self._error(400, f"unknown metrics format {fmt!r}; "
                                 "expected json or prometheus")
            return
        if path.startswith("/jobs/"):
            rest = path[len("/jobs/"):]
            if rest.endswith("/events"):
                self._serve_events(rest[:-len("/events")])
                return
            self._serve_job(rest)
            return
        self._error(404, f"no such endpoint: GET {self.path}")

    def _serve_healthz(self) -> None:
        healthy, payload = self.service.health_snapshot()
        self._send_json(200 if healthy else 503, payload)

    # -- job lookup (pool- or queue-backed) ----------------------------

    def _lookup(self, job_id: str
                ) -> Tuple[str, Optional[JobResult], Dict[str, Any]]:
        """``(status, result, extras)`` for one job in either backend."""
        if self.queue is not None:
            try:
                queue_id = int(job_id)
            except ValueError:
                return "unknown", None, {}
            row = self.queue.status(queue_id)
            if row is None:
                return "unknown", None, {}
            status = _QUEUE_STATUS[row["state"]]
            result = self.queue.result(queue_id) \
                if status == "done" else None
            return status, result, {"queue_state": row["state"],
                                    "attempts": row["attempts"]}
        status = self.pool.status(job_id)
        return status, self.pool.result(job_id), {}

    def _serve_job(self, job_id: str) -> None:
        status, result, extras = self._lookup(job_id)
        if status == "unknown":
            self._error(404, f"unknown job id {job_id!r}")
            return
        payload = {"id": job_id, "status": status,
                   "result": result.to_dict() if result is not None
                   else None}
        payload.update(extras)
        self._send_json(200, payload)

    # -- SSE -----------------------------------------------------------

    def _emit_event(self, name: str, payload: Dict[str, Any]) -> bool:
        try:
            self.wfile.write(
                f"event: {name}\ndata: "
                f"{json.dumps(payload, sort_keys=True)}\n\n".encode("utf-8"))
            self.wfile.flush()
            return True
        except (BrokenPipeError, ConnectionResetError, OSError):
            return False  # client went away; stop streaming

    def _serve_events(self, job_id: str) -> None:
        """Stream one job's progress as server-sent events."""
        status, _result, _extras = self._lookup(job_id)
        if status == "unknown":
            self._error(404, f"unknown job id {job_id!r}")
            return
        self.send_response(200)
        self.send_header("Content-Type", "text/event-stream")
        self.send_header("Cache-Control", "no-cache")
        self.send_header("Connection", "close")
        self.end_headers()
        self.close_connection = True
        last_status: Optional[str] = None
        deadline = time.monotonic() + EVENTS_MAX_S
        while time.monotonic() < deadline:
            status, result, extras = self._lookup(job_id)
            if status != last_status:
                last_status = status
                event: Dict[str, Any] = {"id": job_id, "status": status}
                event.update(extras)
                if not self._emit_event("status", event):
                    return
            if status == "done" and result is not None:
                # The per-phase totals the job's telemetry session
                # recorded (the same spans /metrics aggregates).
                for phase, seconds in sorted(
                        (result.timings or {}).items()):
                    if not self._emit_event("phase", {
                            "id": job_id, "phase": phase,
                            "ms": round(seconds * 1000.0, 3)}):
                        return
                self._emit_event("result",
                                 {"id": job_id, "result": result.to_dict()})
                return
            if status == "done":  # cancelled/failed rows may lack results
                self._emit_event("result", {"id": job_id, "result": None})
                return
            time.sleep(EVENTS_POLL_S)
        self._emit_event("timeout", {"id": job_id})  # pragma: no cover


class ServiceServer:
    """The pool/node + HTTP listener behind ``repro serve``.

    Without ``queue``: one self-contained node, jobs go to the local
    pool.  With ``queue`` (a path or :class:`JobQueue`): submissions
    land in the durable queue and a :class:`QueueWorker` attached to
    this server pulls from it — alongside every other node pointed at
    the same queue file.
    """

    def __init__(self, workers: int = 1, host: str = "127.0.0.1",
                 port: int = 8321, cache: Optional[ResultCache] = None,
                 queue: Optional[Union[JobQueue, str]] = None,
                 node_id: Optional[str] = None,
                 lease_s: Optional[float] = None,
                 auth_token: Optional[str] = None,
                 rate_limit: Optional[float] = None,
                 rate_burst: Optional[float] = None) -> None:
        self.auth_token = auth_token
        self.rate_limiter = RateLimiter(rate_limit, rate_burst)
        self.node: Optional[QueueWorker] = None
        self.queue: Optional[JobQueue] = None
        if queue is not None:
            self.node = QueueWorker(queue, workers=workers, cache=cache,
                                    node_id=node_id, lease_s=lease_s)
            self.queue = self.node.queue
            self.pool = self.node.pool
        else:
            # No completion stream: HTTP clients poll GET /jobs/<id>, so
            # an unconsumed stream queue would only grow without bound.
            self.pool = WorkerPool(workers=workers, cache=cache,
                                   keep_stream=False)
        self.httpd = ThreadingHTTPServer((host, port), ServiceHandler)
        self.httpd.daemon_threads = True
        self.httpd.pool = self.pool  # type: ignore[attr-defined]
        self.httpd.queue = self.queue  # type: ignore[attr-defined]
        self.httpd.service = self  # type: ignore[attr-defined]

    @property
    def address(self) -> Tuple[str, int]:
        host, port = self.httpd.server_address[:2]
        return str(host), int(port)

    # -- snapshots -----------------------------------------------------

    def stats_snapshot(self) -> Dict[str, Any]:
        snapshot = self.pool.stats_snapshot()
        snapshot["rate_limiter"] = self.rate_limiter.stats_dict()
        snapshot["auth"] = {"required": self.auth_token is not None}
        if self.node is not None:
            snapshot["node"] = self.node.stats_snapshot()
        return snapshot

    def metrics_snapshot(self) -> Dict[str, Any]:
        metrics = self.pool.metrics_snapshot()
        metrics["rate_limiter"] = self.rate_limiter.stats_dict()
        if self.node is not None:
            node = self.node.stats_snapshot()
            node.pop("queue", None)  # superseded by the gauges below
            metrics["node"] = node
        if self.queue is not None:
            gauges = self.queue.gauges()
            metrics["queue"] = gauges.pop("depth")
            #: lease ages, retry totals and the per-process event
            #: counters (dedupe hits, expired reclaims/failures).
            metrics["queue_health"] = gauges
        return metrics

    def health_snapshot(self) -> Tuple[bool, Dict[str, Any]]:
        """(healthy?, payload) for ``GET /healthz``."""
        pool_stats = self.pool.stats_snapshot()["pool"]["workers"]
        workers_ok = pool_stats["alive"] > 0
        queue_ok = True
        payload: Dict[str, Any] = {
            "workers": {"configured": pool_stats["configured"],
                        "alive": pool_stats["alive"]},
            "queue": {"attached": self.queue is not None},
        }
        if self.queue is not None:
            queue_ok = self.queue.ping()
            payload["queue"]["reachable"] = queue_ok
            payload["queue"]["path"] = self.queue.path
        healthy = workers_ok and queue_ok
        payload["status"] = "ok" if healthy else "unavailable"
        if not healthy:
            payload["failing"] = ([] if workers_ok else ["workers"]) + \
                ([] if queue_ok else ["queue"])
        return healthy, payload

    # -- lifecycle -----------------------------------------------------

    def start(self) -> "ServiceServer":
        """Start the pool/node and serve in a background thread (tests
        and embedding; the CLI uses :meth:`serve_forever`)."""
        if self.node is not None:
            self.node.start()
        else:
            self.pool.start()
        thread = threading.Thread(target=self.httpd.serve_forever,
                                  name="repro-serve-http", daemon=True)
        thread.start()
        return self

    def serve_forever(self) -> None:
        if self.node is not None:
            self.node.start()
        else:
            self.pool.start()
        try:
            self.httpd.serve_forever()
        except KeyboardInterrupt:
            pass
        finally:
            self.close()

    def close(self) -> None:
        self.httpd.shutdown()
        self.httpd.server_close()
        if self.node is not None:
            self.node.stop()
        else:
            self.pool.shutdown()


def serve(workers: int = 1, host: str = "127.0.0.1", port: int = 8321,
          cache_dir: Optional[str] = None,
          cache_max_mb: Optional[float] = None,
          queue_path: Optional[str] = None,
          node_id: Optional[str] = None,
          lease_s: Optional[float] = None,
          auth_token: Optional[str] = None,
          rate_limit: Optional[float] = None,
          rate_burst: Optional[float] = None,
          trace_log: Optional[str] = None,
          announce=None) -> None:
    """Run the batch service until interrupted (the ``repro serve``
    entry point).  The first SIGINT shuts down gracefully: the listener
    stops, queued jobs are cancelled (pool mode) or released back to the
    queue (queue mode) and in-flight jobs drain."""
    if trace_log:
        telemetry.set_tracelog(trace_log, node=node_id)
    cache = ResultCache(cache_dir, max_mb=cache_max_mb) \
        if cache_dir is not None else ResultCache()
    server = ServiceServer(workers=workers, host=host, port=port,
                           cache=cache, queue=queue_path, node_id=node_id,
                           lease_s=lease_s, auth_token=auth_token,
                           rate_limit=rate_limit, rate_burst=rate_burst)
    if announce is not None:
        host_, port_ = server.address
        extras = [f"{workers} worker(s)"]
        if queue_path:
            extras.append(f"queue at {queue_path}")
        if cache_dir:
            extras.append(f"cache at {cache_dir}")
        if auth_token:
            extras.append("bearer auth on")
        if trace_log:
            extras.append(f"trace log at {trace_log}")
        if rate_limit:
            extras.append(f"rate limit {rate_limit:g}/s per tenant")
        announce(f"repro serve: listening on http://{host_}:{port_} "
                 f"with {', '.join(extras)}")
    # serve_forever handles KeyboardInterrupt; translate SIGTERM into the
    # same graceful path when we're on the main thread.
    if threading.current_thread() is threading.main_thread():
        def _graceful(_signum, _frame):
            raise KeyboardInterrupt

        signal.signal(signal.SIGTERM, _graceful)
    server.serve_forever()
