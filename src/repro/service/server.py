"""``repro serve`` — a stdlib HTTP front-end over the worker pool.

Three endpoints, JSON in and out:

``POST /jobs``
    Submit a batch.  Body: ``{"jobs": [<job dict>, ...]}`` (or a single
    job dict); each job dict is :meth:`repro.service.jobs.Job.to_dict`
    shaped — ``kind`` and ``source`` required, everything else optional.
    Response: ``{"ids": [...], "submitted": N}``, HTTP 202.

``GET /jobs/<id>``
    Poll one job: ``{"id", "status": queued|running|done|unknown,
    "result": <JobResult dict> | null}``.

``GET /stats``
    Pool throughput (jobs/sec, per-kind latency counters, status
    counts), worker health (alive/busy/restarts) and cache
    effectiveness (hit rate, stores).

``GET /metrics``
    Telemetry aggregation: per-pipeline-phase latency histograms
    (count, mean, p50, p95, max — from each executed job's telemetry
    timings), summed runtime counters, cache hit/miss/store counts and
    worker restart/timeout/crash counters.

Both read endpoints take their snapshots under the pool lock — the
completion path mutates the stats dicts with the lock held, so a
lock-free read could observe a dict mid-resize.  Every response,
including handler- and ``http.server``-generated errors, is JSON with
an explicit ``Content-Length`` (keep-alive clients depend on it).

The server is intentionally small — ``http.server`` from the standard
library, threaded so slow pollers never block submissions; anything
production-shaped beyond that (auth, TLS, persistence of job state)
stays out of scope for the reproduction.
"""

from __future__ import annotations

import json
import signal
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, Optional, Tuple

from .cache import ResultCache
from .jobs import Job
from .pool import WorkerPool

#: refuse request bodies beyond this many bytes (a submission of the
#: whole student corpus is ~100 KiB; 16 MiB is generous headroom).
MAX_BODY_BYTES = 16 * 1024 * 1024


class ServiceHandler(BaseHTTPRequestHandler):
    """Request handler bound to the server's pool via ``self.server``."""

    server_version = "repro-serve/1.0"
    protocol_version = "HTTP/1.1"

    # -- plumbing ------------------------------------------------------

    @property
    def pool(self) -> WorkerPool:
        return self.server.pool  # type: ignore[attr-defined]

    def log_message(self, format: str, *args: Any) -> None:
        if getattr(self.server, "verbose", False):  # pragma: no cover
            super().log_message(format, *args)

    def _send_json(self, status: int, payload: Dict[str, Any]) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _error(self, status: int, message: str) -> None:
        self._send_json(status, {"error": message})

    def send_error(self, code: int, message: Optional[str] = None,
                   explain: Optional[str] = None) -> None:
        """Replace ``http.server``'s HTML error pages (malformed request
        line, unsupported method, ...) with the same JSON-plus-explicit-
        Content-Length shape every other response uses."""
        short = message
        if not short:
            short, _ = self.responses.get(code, ("error", ""))
        self._send_json(code, {"error": short})

    def _read_body(self) -> Optional[bytes]:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            self._error(400, "a JSON request body is required")
            return None
        if length > MAX_BODY_BYTES:
            self._error(413, f"request body exceeds {MAX_BODY_BYTES} bytes")
            return None
        return self.rfile.read(length)

    # -- routes --------------------------------------------------------

    def do_POST(self) -> None:  # noqa: N802 - http.server naming
        if self.path.rstrip("/") != "/jobs":
            self._error(404, f"no such endpoint: POST {self.path}")
            return
        body = self._read_body()
        if body is None:
            return
        try:
            payload = json.loads(body)
        except ValueError as error:
            self._error(400, f"invalid JSON: {error}")
            return
        if isinstance(payload, dict) and "jobs" in payload:
            entries = payload["jobs"]
        elif isinstance(payload, dict):
            entries = [payload]
        else:
            entries = payload
        if not isinstance(entries, list) or not entries:
            self._error(400, "expected {'jobs': [...]} with at least one job")
            return
        jobs: List[Job] = []
        for index, entry in enumerate(entries):
            try:
                jobs.append(Job.from_dict(entry))
            except (TypeError, ValueError) as error:
                self._error(400, f"job #{index}: {error}")
                return
        ids = [self.pool.submit(job) for job in jobs]
        self._send_json(202, {"ids": ids, "submitted": len(ids)})

    def do_GET(self) -> None:  # noqa: N802 - http.server naming
        path = self.path.rstrip("/") or "/"
        if path == "/stats":
            self._send_json(200, self.pool.stats_snapshot())
            return
        if path == "/metrics":
            self._send_json(200, self.pool.metrics_snapshot())
            return
        if path.startswith("/jobs/"):
            job_id = path[len("/jobs/"):]
            status = self.pool.status(job_id)
            if status == "unknown":
                self._error(404, f"unknown job id {job_id!r}")
                return
            result = self.pool.result(job_id)
            self._send_json(200, {
                "id": job_id,
                "status": status,
                "result": result.to_dict() if result is not None else None,
            })
            return
        self._error(404, f"no such endpoint: GET {self.path}")


class ServiceServer:
    """The pool + HTTP listener pair behind ``repro serve``."""

    def __init__(self, workers: int = 1, host: str = "127.0.0.1",
                 port: int = 8321, cache: Optional[ResultCache] = None
                 ) -> None:
        # No completion stream: HTTP clients poll GET /jobs/<id>, so an
        # unconsumed stream queue would only grow without bound.
        self.pool = WorkerPool(workers=workers, cache=cache,
                               keep_stream=False)
        self.httpd = ThreadingHTTPServer((host, port), ServiceHandler)
        self.httpd.daemon_threads = True
        self.httpd.pool = self.pool  # type: ignore[attr-defined]

    @property
    def address(self) -> Tuple[str, int]:
        host, port = self.httpd.server_address[:2]
        return str(host), int(port)

    def start(self) -> "ServiceServer":
        """Start the pool and serve in a background thread (tests and
        embedding; the CLI uses :meth:`serve_forever`)."""
        self.pool.start()
        thread = threading.Thread(target=self.httpd.serve_forever,
                                  name="repro-serve-http", daemon=True)
        thread.start()
        return self

    def serve_forever(self) -> None:
        self.pool.start()
        try:
            self.httpd.serve_forever()
        except KeyboardInterrupt:
            pass
        finally:
            self.close()

    def close(self) -> None:
        self.httpd.shutdown()
        self.httpd.server_close()
        self.pool.shutdown()


def serve(workers: int = 1, host: str = "127.0.0.1", port: int = 8321,
          cache_dir: Optional[str] = None,
          announce=None) -> None:
    """Run the batch service until interrupted (the ``repro serve``
    entry point).  The first SIGINT shuts down gracefully: the listener
    stops, queued jobs are cancelled and in-flight jobs drain."""
    cache = ResultCache(cache_dir) if cache_dir is not None \
        else ResultCache()
    server = ServiceServer(workers=workers, host=host, port=port,
                           cache=cache)
    if announce is not None:
        host_, port_ = server.address
        announce(f"repro serve: listening on http://{host_}:{port_} "
                 f"with {workers} worker(s)"
                 + (f", cache at {cache_dir}" if cache_dir else ""))
    # serve_forever handles KeyboardInterrupt; translate SIGTERM into the
    # same graceful path when we're on the main thread.
    if threading.current_thread() is threading.main_thread():
        def _graceful(_signum, _frame):
            raise KeyboardInterrupt

        signal.signal(signal.SIGTERM, _graceful)
    server.serve_forever()
