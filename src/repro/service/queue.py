"""Durable job queue: SQLite-WAL persistence, leases, retry budgets.

The worker pool (:mod:`repro.service.pool`) made the pipeline concurrent
on one host; this module makes it *durable* and *multi-host*.  A
:class:`JobQueue` is a single SQLite database (WAL mode) that any number
of independent node processes — ``repro serve --queue q.db`` on the same
machine or a shared filesystem — open concurrently.  Nodes pull work
with :meth:`~JobQueue.claim`, renew it with :meth:`~JobQueue.heartbeat`
and publish results with :meth:`~JobQueue.complete`; every transition is
one SQLite transaction, so a node that is SIGKILL'd at any instruction
leaves the queue in a consistent state.

Job state machine::

    queued ──claim──▶ leased ──complete──▶ done | failed
      ▲                 │
      │   lease expiry  │        (attempts < retry budget)
      └─────────────────┘
      queued ─drain─▶ cancelled
      leased ──lease expiry with attempts ≥ budget──▶ failed

Durability invariants, each enforced by the schema + transactions and
exercised by ``tests/test_service_queue.py`` / ``scripts/queue_ci.py``:

* **No loss.**  A claimed job is *leased*, not removed.  If the node
  dies, its lease expires (no heartbeats) and the next ``claim`` by any
  node re-offers the job with ``attempts`` incremented.
* **No duplicated completion.**  ``complete`` is fenced on the lease:
  ``UPDATE ... WHERE state='leased' AND lease_owner=?``.  If the lease
  was lost (expired and re-claimed elsewhere), the late writer's update
  matches zero rows and its result is discarded — first completion wins.
  Jobs are deterministic (same source + knobs ⇒ same result), so a
  discarded late result is byte-identical to the winning one anyway.
* **Bounded retries.**  A job whose lease expires ``max_attempts``
  times transitions to ``failed`` with a structured
  :class:`~repro.service.jobs.JobResult` (status ``crashed``) instead
  of looping forever on a poison input.

Batch resume rides on the same table: ``submit`` takes an optional
``dedupe_key`` (unique-indexed), so re-submitting an interrupted corpus
is idempotent — already-done rows keep their results and only the
unfinished remainder is executed.  See ``repro batch --queue --resume``.
"""

from __future__ import annotations

import json
import os
import sqlite3
import threading
import time
from typing import Any, Dict, Iterable, List, Optional, Tuple

from .jobs import Job, JobResult

#: Queue-level job states.  ``done``/``failed``/``cancelled`` are
#: terminal; ``failed`` means the *queue* gave up (retry budget), while a
#: job whose pipeline errored deterministically is ``done`` with an
#: error-status result — that is a real, cacheable answer.
QUEUE_STATES = ("queued", "leased", "done", "failed", "cancelled")

#: Default lease duration: long enough for any corpus job, short enough
#: that a killed node's work is re-offered promptly.
DEFAULT_LEASE_S = 30.0

#: Default retry budget: a job may be (re-)leased this many times in
#: total before the queue fails it.
DEFAULT_MAX_ATTEMPTS = 3

_SCHEMA = """
CREATE TABLE IF NOT EXISTS jobs (
    id               INTEGER PRIMARY KEY AUTOINCREMENT,
    batch_id         TEXT,
    tenant           TEXT,
    dedupe_key       TEXT UNIQUE,
    state            TEXT NOT NULL DEFAULT 'queued',
    job_json         TEXT NOT NULL,
    result_json      TEXT,
    attempts         INTEGER NOT NULL DEFAULT 0,
    max_attempts     INTEGER NOT NULL DEFAULT 3,
    lease_owner      TEXT,
    lease_expires_at REAL,
    enqueued_at      REAL NOT NULL,
    started_at       REAL,
    finished_at      REAL
);
CREATE INDEX IF NOT EXISTS jobs_claimable
    ON jobs (state, lease_expires_at);
CREATE INDEX IF NOT EXISTS jobs_batch ON jobs (batch_id, state);
"""


class QueueError(Exception):
    """The queue database is unusable (corrupt, locked beyond the busy
    timeout, wrong schema...)."""


class JobQueue:
    """A persistent, multi-process job queue over one SQLite file.

    Thread-safe: every thread gets its own connection (SQLite WAL
    handles cross-connection concurrency; ``busy_timeout`` absorbs
    writer contention).  Safe across processes and — on a shared
    filesystem with POSIX locks — across hosts.
    """

    def __init__(self, path: str, lease_s: float = DEFAULT_LEASE_S,
                 max_attempts: int = DEFAULT_MAX_ATTEMPTS,
                 busy_timeout_s: float = 10.0) -> None:
        if lease_s <= 0:
            raise ValueError("lease_s must be > 0")
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        self.path = path
        self.lease_s = lease_s
        self.max_attempts = max_attempts
        self.busy_timeout_s = busy_timeout_s
        self._local = threading.local()
        #: in-process counters for queue events that are otherwise
        #: invisible from the outside (they leave no distinct row
        #: state): dedupe hits, expired leases re-offered, retry-budget
        #: failures.  Surfaced by :meth:`gauges` → ``/metrics`` and the
        #: batch ``--queue`` summary.  Per-process by design — each
        #: node reports what *it* observed.
        self._counters_lock = threading.Lock()
        self.counters: Dict[str, int] = {
            "dedupe_hits": 0,
            "expired_reclaims": 0,
            "expired_failures": 0,
        }
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        # Create the schema eagerly so a bad path fails at construction,
        # not on the first claim.
        self._conn()

    # -- connection management -----------------------------------------

    def _conn(self) -> sqlite3.Connection:
        conn = getattr(self._local, "conn", None)
        if conn is not None:
            return conn
        try:
            conn = sqlite3.connect(self.path, timeout=self.busy_timeout_s,
                                   isolation_level=None)
            conn.row_factory = sqlite3.Row
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA synchronous=NORMAL")
            conn.execute(f"PRAGMA busy_timeout={int(self.busy_timeout_s * 1000)}")
            conn.executescript(_SCHEMA)
        except sqlite3.Error as error:
            raise QueueError(f"cannot open queue at {self.path}: {error}") \
                from error
        self._local.conn = conn
        return conn

    def close(self) -> None:
        conn = getattr(self._local, "conn", None)
        if conn is not None:
            conn.close()
            self._local.conn = None

    def ping(self) -> bool:
        """Is the queue reachable?  (The ``/healthz`` probe.)"""
        try:
            self._conn().execute("SELECT COUNT(*) FROM jobs").fetchone()
            return True
        except (QueueError, sqlite3.Error):
            return False

    def _count(self, name: str, n: int = 1) -> None:
        with self._counters_lock:
            self.counters[name] = self.counters.get(name, 0) + n

    def counters_snapshot(self) -> Dict[str, int]:
        with self._counters_lock:
            return dict(self.counters)

    # -- submission ----------------------------------------------------

    def submit(self, job: Job, batch_id: Optional[str] = None,
               tenant: Optional[str] = None,
               dedupe_key: Optional[str] = None,
               max_attempts: Optional[int] = None,
               now: Optional[float] = None) -> int:
        """Enqueue one job; returns its queue id.

        With ``dedupe_key``, submission is idempotent: a key that is
        already present (in *any* state — queued, running or finished)
        returns the existing row's id untouched.  That is the batch
        ``--resume`` contract: re-submitting an interrupted corpus never
        re-runs completed work.
        """
        conn = self._conn()
        now = time.time() if now is None else now
        budget = self.max_attempts if max_attempts is None else max_attempts
        payload = json.dumps(job.to_dict(), sort_keys=True)
        try:
            conn.execute("BEGIN IMMEDIATE")
            if dedupe_key is not None:
                row = conn.execute(
                    "SELECT id FROM jobs WHERE dedupe_key = ?",
                    (dedupe_key,)).fetchone()
                if row is not None:
                    conn.execute("COMMIT")
                    self._count("dedupe_hits")
                    return int(row["id"])
            cursor = conn.execute(
                "INSERT INTO jobs (batch_id, tenant, dedupe_key, state, "
                "job_json, attempts, max_attempts, enqueued_at) "
                "VALUES (?, ?, ?, 'queued', ?, 0, ?, ?)",
                (batch_id, tenant, dedupe_key, payload, budget, now))
            conn.execute("COMMIT")
        except sqlite3.Error as error:
            conn.execute("ROLLBACK")
            raise QueueError(f"submit failed: {error}") from error
        return int(cursor.lastrowid)

    def submit_many(self, jobs: Iterable[Tuple[Job, Optional[str]]],
                    batch_id: Optional[str] = None,
                    tenant: Optional[str] = None,
                    max_attempts: Optional[int] = None) -> List[int]:
        """Enqueue ``(job, dedupe_key)`` pairs; returns ids in order."""
        return [self.submit(job, batch_id=batch_id, tenant=tenant,
                            dedupe_key=key, max_attempts=max_attempts)
                for job, key in jobs]

    # -- the lease protocol --------------------------------------------

    def claim(self, owner: str, lease_s: Optional[float] = None,
              now: Optional[float] = None
              ) -> Optional[Tuple[int, Job, int]]:
        """Atomically lease the next runnable job for ``owner``.

        Returns ``(queue_id, job, attempt)`` or ``None`` when nothing is
        runnable.  Runnable means ``queued``, or ``leased`` with an
        expired lease (the owner stopped heartbeating — crashed,
        SIGKILL'd, partitioned).  Expired jobs whose retry budget is
        exhausted are transitioned to ``failed`` here, with a structured
        result, rather than handed out again.
        """
        conn = self._conn()
        lease = self.lease_s if lease_s is None else lease_s
        while True:
            now_ = time.time() if now is None else now
            try:
                conn.execute("BEGIN IMMEDIATE")
                row = conn.execute(
                    "SELECT id, state, job_json, attempts, max_attempts "
                    "FROM jobs WHERE state = 'queued' "
                    "OR (state = 'leased' AND lease_expires_at < ?) "
                    "ORDER BY enqueued_at, id LIMIT 1",
                    (now_,)).fetchone()
                if row is None:
                    conn.execute("COMMIT")
                    return None
                job = Job.from_dict(json.loads(row["job_json"]))
                if row["attempts"] >= row["max_attempts"]:
                    # Budget exhausted: every granted lease expired
                    # without a completion.  Fail the job with a real
                    # result so batch consumers see a structured error.
                    outcome = JobResult.interrupted(
                        job, "crashed",
                        f"lease expired {row['attempts']} time(s); "
                        f"retry budget of {row['max_attempts']} exhausted")
                    conn.execute(
                        "UPDATE jobs SET state = 'failed', result_json = ?, "
                        "lease_owner = NULL, lease_expires_at = NULL, "
                        "finished_at = ? WHERE id = ?",
                        (json.dumps(outcome.to_dict(), sort_keys=True),
                         now_, row["id"]))
                    conn.execute("COMMIT")
                    self._count("expired_failures")
                    continue  # look for the next runnable job
                conn.execute(
                    "UPDATE jobs SET state = 'leased', lease_owner = ?, "
                    "lease_expires_at = ?, attempts = attempts + 1, "
                    "started_at = COALESCE(started_at, ?) WHERE id = ?",
                    (owner, now_ + lease, now_, row["id"]))
                conn.execute("COMMIT")
                if row["state"] == "leased":
                    # An expired lease re-offered: the previous owner
                    # stopped heartbeating and this claim took the job
                    # over.
                    self._count("expired_reclaims")
            except sqlite3.Error as error:
                conn.execute("ROLLBACK")
                raise QueueError(f"claim failed: {error}") from error
            return int(row["id"]), job, int(row["attempts"]) + 1

    def heartbeat(self, queue_id: int, owner: str,
                  lease_s: Optional[float] = None,
                  now: Optional[float] = None) -> bool:
        """Extend ``owner``'s lease on a running job.

        Returns ``False`` when the lease is gone — the job expired and
        was re-claimed (or finished) elsewhere.  A well-behaved node
        abandons local work whose heartbeat fails; even if it does not,
        the completion fence makes its late result a no-op.
        """
        conn = self._conn()
        lease = self.lease_s if lease_s is None else lease_s
        now_ = time.time() if now is None else now
        cursor = conn.execute(
            "UPDATE jobs SET lease_expires_at = ? "
            "WHERE id = ? AND state = 'leased' AND lease_owner = ?",
            (now_ + lease, queue_id, owner))
        return cursor.rowcount == 1

    def complete(self, queue_id: int, owner: str, result: JobResult,
                 now: Optional[float] = None) -> bool:
        """Publish a result — exactly once.

        Fenced on the lease: only the current lease owner's first
        completion lands; a node that lost its lease gets ``False`` and
        its result is discarded.  The queue state becomes ``done``
        whether the pipeline succeeded or produced a deterministic
        error (both are real answers); supervisor statuses that the
        *pool* assigned (timeout, crash) are answers too — the retry
        budget applies to *lease* expiry, not to jobs whose execution
        completed with a structured outcome.
        """
        conn = self._conn()
        now_ = time.time() if now is None else now
        cursor = conn.execute(
            "UPDATE jobs SET state = 'done', result_json = ?, "
            "lease_owner = NULL, lease_expires_at = NULL, finished_at = ? "
            "WHERE id = ? AND state = 'leased' AND lease_owner = ?",
            (json.dumps(result.to_dict(), sort_keys=True), now_,
             queue_id, owner))
        return cursor.rowcount == 1

    def release(self, queue_id: int, owner: str) -> bool:
        """Voluntarily return a leased job to the queue (graceful node
        shutdown with work still in flight).  The attempt it consumed is
        refunded — a handed-back job was never at fault."""
        cursor = self._conn().execute(
            "UPDATE jobs SET state = 'queued', lease_owner = NULL, "
            "lease_expires_at = NULL, attempts = attempts - 1 "
            "WHERE id = ? AND state = 'leased' AND lease_owner = ?",
            (queue_id, owner))
        return cursor.rowcount == 1

    # -- inspection ----------------------------------------------------

    def status(self, queue_id: int) -> Optional[Dict[str, Any]]:
        """One job's queue row (sans payloads), or ``None``."""
        row = self._conn().execute(
            "SELECT id, batch_id, tenant, state, attempts, max_attempts, "
            "lease_owner, lease_expires_at, enqueued_at, started_at, "
            "finished_at FROM jobs WHERE id = ?", (queue_id,)).fetchone()
        if row is None:
            return None
        return dict(row)

    def job(self, queue_id: int) -> Optional[Job]:
        row = self._conn().execute(
            "SELECT job_json FROM jobs WHERE id = ?", (queue_id,)).fetchone()
        if row is None:
            return None
        return Job.from_dict(json.loads(row["job_json"]))

    def result(self, queue_id: int) -> Optional[JobResult]:
        row = self._conn().execute(
            "SELECT result_json FROM jobs WHERE id = ?",
            (queue_id,)).fetchone()
        if row is None or row["result_json"] is None:
            return None
        return JobResult.from_dict(json.loads(row["result_json"]))

    def counts(self, batch_id: Optional[str] = None) -> Dict[str, int]:
        """Jobs per state, queue-wide or for one batch."""
        if batch_id is None:
            rows = self._conn().execute(
                "SELECT state, COUNT(*) AS n FROM jobs GROUP BY state")
        else:
            rows = self._conn().execute(
                "SELECT state, COUNT(*) AS n FROM jobs "
                "WHERE batch_id = ? GROUP BY state", (batch_id,))
        counts = {state: 0 for state in QUEUE_STATES}
        for row in rows:
            counts[row["state"]] = int(row["n"])
        counts["total"] = sum(counts[state] for state in QUEUE_STATES)
        return counts

    def gauges(self, now: Optional[float] = None) -> Dict[str, Any]:
        """Fleet-health gauges for ``/metrics``: depth by state, age of
        the oldest queued job and oldest outstanding lease, total retry
        attempts beyond the first, plus this process's event counters.
        One read transaction — cheap enough to serve on every scrape."""
        now_ = time.time() if now is None else now
        conn = self._conn()
        depth = self.counts()
        oldest_queued = conn.execute(
            "SELECT MIN(enqueued_at) AS t FROM jobs WHERE state = 'queued'"
        ).fetchone()["t"]
        oldest_lease = conn.execute(
            "SELECT MIN(started_at) AS t FROM jobs WHERE state = 'leased'"
        ).fetchone()["t"]
        retries = conn.execute(
            "SELECT COALESCE(SUM(MAX(attempts - 1, 0)), 0) AS n FROM jobs"
        ).fetchone()["n"]
        return {
            "depth": depth,
            "oldest_queued_age_s": round(max(now_ - oldest_queued, 0.0), 3)
            if oldest_queued is not None else 0.0,
            "oldest_lease_age_s": round(max(now_ - oldest_lease, 0.0), 3)
            if oldest_lease is not None else 0.0,
            "retries_total": int(retries),
            "counters": self.counters_snapshot(),
        }

    def unfinished(self, batch_id: Optional[str] = None) -> int:
        """Jobs still queued or leased (the drain-loop predicate)."""
        counts = self.counts(batch_id)
        return counts["queued"] + counts["leased"]

    def batch_rows(self, batch_id: str) -> List[Dict[str, Any]]:
        """Every job of a batch — id, state, source name, result —
        in submission order (the ``batch --queue`` report)."""
        rows = self._conn().execute(
            "SELECT id, state, job_json, result_json FROM jobs "
            "WHERE batch_id = ? ORDER BY id", (batch_id,))
        out = []
        for row in rows:
            job_dict = json.loads(row["job_json"])
            out.append({
                "id": int(row["id"]),
                "state": row["state"],
                "source_name": job_dict.get("source_name", "<job>"),
                "result": json.loads(row["result_json"])
                if row["result_json"] else None,
            })
        return out

    def drain(self, batch_id: Optional[str] = None,
              now: Optional[float] = None) -> int:
        """Cancel every queued job (queue-wide or one batch); leased
        jobs run to completion on their nodes.  Returns the count."""
        conn = self._conn()
        now_ = time.time() if now is None else now
        try:
            conn.execute("BEGIN IMMEDIATE")
            if batch_id is None:
                rows = conn.execute(
                    "SELECT id, job_json FROM jobs WHERE state = 'queued'"
                ).fetchall()
            else:
                rows = conn.execute(
                    "SELECT id, job_json FROM jobs "
                    "WHERE state = 'queued' AND batch_id = ?",
                    (batch_id,)).fetchall()
            for row in rows:
                job = Job.from_dict(json.loads(row["job_json"]))
                outcome = JobResult.interrupted(
                    job, "cancelled", "queue drained before dispatch")
                conn.execute(
                    "UPDATE jobs SET state = 'cancelled', result_json = ?, "
                    "finished_at = ? WHERE id = ? AND state = 'queued'",
                    (json.dumps(outcome.to_dict(), sort_keys=True),
                     now_, row["id"]))
            conn.execute("COMMIT")
        except sqlite3.Error as error:
            conn.execute("ROLLBACK")
            raise QueueError(f"drain failed: {error}") from error
        return len(rows)


def batch_dedupe_key(batch_id: str, job: Job) -> str:
    """The idempotency key of one job within a resumable batch: the
    batch identity plus everything that determines the job's outcome
    (semantic fields + exact source + source name, so two submissions
    of the same file are distinct rows only across batches)."""
    import hashlib

    material = json.dumps({
        "batch": batch_id,
        "source_name": job.source_name,
        "source": job.source,
        "job": job.semantic_fields(),
    }, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(material.encode("utf-8")).hexdigest()


def derive_batch_id(jobs: Iterable[Job]) -> str:
    """A content-derived batch id: the same corpus + knobs resumes the
    same batch without the user tracking an id by hand."""
    import hashlib

    digest = hashlib.sha256()
    for job in jobs:
        digest.update(json.dumps({
            "source_name": job.source_name,
            "source": job.source,
            "job": job.semantic_fields(),
        }, sort_keys=True, separators=(",", ":")).encode("utf-8"))
    return f"batch-{digest.hexdigest()[:16]}"
