"""Typed batch jobs and their results.

A :class:`Job` is one unit of work for the batch service: run the
detector, the repair engine or the performance simulator over one mini-HJ
source text.  A :class:`JobResult` is what comes back — always, for every
input: a malformed program, a program that diverges, or a worker process
that dies mid-job all produce a structured result instead of killing the
batch.  Both sides serialize to plain JSON dictionaries, which is also
exactly what crosses the worker-pool process boundary, so the CLI
``--json`` mode, the on-disk result cache and the HTTP API all share one
schema (``JobResult.SCHEMA``).

:func:`run_job` executes a job in the calling process; the worker pool
(:mod:`repro.service.pool`) calls it from worker processes and adds the
things only a supervisor can provide: wall-clock timeouts, crash capture
and cancellation.
"""

from __future__ import annotations

import time
import traceback
from typing import Any, Dict, Optional, Sequence

from ..errors import (
    LexError,
    ParseError,
    RepairError,
    ReplayError,
    ReproError,
    RuntimeFault,
    SourceError,
    StepLimitExceeded,
    ValidationError,
)

#: Job kinds, mirroring the CLI verbs they batch.
JOB_KINDS = ("detect", "repair", "measure")

#: Result statuses.  ``ok``/``error`` come out of :func:`run_job`;
#: ``timeout``/``crashed``/``cancelled`` are assigned by the pool.
STATUSES = ("ok", "error", "timeout", "crashed", "cancelled")

#: Error categories whose outcome is a deterministic function of the job
#: (same source, same args ⇒ same error) — the cacheable failures.
DETERMINISTIC_ERRORS = frozenset(
    ("lex", "parse", "validate", "runtime", "step-limit", "repair"))


def _error_category(error: BaseException) -> str:
    if isinstance(error, LexError):
        return "lex"
    if isinstance(error, ParseError):
        return "parse"
    if isinstance(error, ValidationError):
        return "validate"
    if isinstance(error, StepLimitExceeded):
        return "step-limit"
    if isinstance(error, RuntimeFault):
        return "runtime"
    if isinstance(error, RepairError):
        return "repair"
    if isinstance(error, ReplayError):
        return "replay"
    if isinstance(error, ReproError):
        return "repro"
    return "internal"


class Job:
    """One unit of batch work: a kind, a source text and its knobs.

    Everything is plain data; ``to_dict``/``from_dict`` round-trip
    losslessly, and the dictionary form is what travels to worker
    processes and into HTTP request bodies.
    """

    __slots__ = ("kind", "source", "source_name", "args", "algorithm",
                 "engine", "strip_finishes", "max_iterations", "replay",
                 "incremental", "processors", "sequential", "max_ops",
                 "timeout_s", "trace")

    def __init__(self, kind: str, source: str, source_name: str = "<job>",
                 args: Sequence[Any] = (), algorithm: str = "mrw",
                 engine: Optional[str] = None, strip_finishes: bool = False,
                 max_iterations: int = 20, replay: Optional[bool] = None,
                 incremental: Optional[bool] = None,
                 processors: int = 12, sequential: bool = False,
                 max_ops: int = 200_000_000,
                 timeout_s: Optional[float] = None,
                 trace: Optional[Dict[str, str]] = None) -> None:
        if kind not in JOB_KINDS:
            raise ValueError(f"unknown job kind {kind!r}; "
                             f"expected one of {', '.join(JOB_KINDS)}")
        self.kind = kind
        self.source = source
        self.source_name = source_name
        self.args = tuple(args)
        self.algorithm = algorithm
        self.engine = engine
        self.strip_finishes = strip_finishes
        self.max_iterations = max_iterations
        #: trace-replay re-detections (repair only); ``None`` = process
        #: default (:func:`repro.repair.engine.replay_enabled_default`).
        self.replay = replay
        #: incremental re-detection on top of replay (repair only);
        #: ``None`` = process default
        #: (:func:`repro.repair.engine.incremental_enabled_default`).
        self.incremental = incremental
        self.processors = processors
        self.sequential = sequential
        self.max_ops = max_ops
        #: wall-clock budget enforced by the worker pool (``None`` = no
        #: limit).  :func:`run_job` itself does not watch the clock.
        self.timeout_s = timeout_s
        #: distributed-tracing context minted at submission
        #: (``{"trace_id", "span_id"}``; see
        #: :class:`repro.telemetry.TraceContext`).  Travels with the job
        #: through queue rows and worker pipes so every span recorded
        #: anywhere in the fleet carries the job's trace identity.
        #: Excluded from :meth:`semantic_fields` — identity, not outcome.
        if hasattr(trace, "to_dict"):
            trace = trace.to_dict()
        self.trace = trace

    # ------------------------------------------------------------------

    def semantic_fields(self) -> Dict[str, Any]:
        """The fields that determine the job's *outcome* (not its
        timing): the cache key is derived from these plus the canonical
        source.  ``engine`` is included defensively — both engines are
        tested to produce identical results, but a cache must never be
        in a position to mask a divergence.  ``replay`` and
        ``timeout_s`` are excluded: they change how fast an answer
        arrives, not the answer.  So is ``incremental``: incremental
        and full re-detection are tested bit-identical."""
        fields: Dict[str, Any] = {
            "kind": self.kind,
            "args": list(self.args),
            "algorithm": self.algorithm,
            "engine": self.engine or "",
            "strip_finishes": self.strip_finishes,
            "max_ops": self.max_ops,
        }
        if self.kind == "repair":
            fields["max_iterations"] = self.max_iterations
        if self.kind == "measure":
            fields["processors"] = self.processors
            fields["sequential"] = self.sequential
        return fields

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "source": self.source,
            "source_name": self.source_name,
            "args": list(self.args),
            "algorithm": self.algorithm,
            "engine": self.engine,
            "strip_finishes": self.strip_finishes,
            "max_iterations": self.max_iterations,
            "replay": self.replay,
            "incremental": self.incremental,
            "processors": self.processors,
            "sequential": self.sequential,
            "max_ops": self.max_ops,
            "timeout_s": self.timeout_s,
            "trace": self.trace,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Job":
        if "kind" not in data or "source" not in data:
            raise ValueError("a job needs at least 'kind' and 'source'")
        known = {name for name in cls.__slots__}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown job field(s): {', '.join(sorted(unknown))}")
        kwargs = {key: value for key, value in data.items() if key in known}
        kwargs.setdefault("source_name", "<job>")
        if kwargs.get("args") is not None:
            kwargs["args"] = tuple(kwargs["args"])
        return cls(**kwargs)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Job({self.kind}, {self.source_name!r}, args={self.args})"


class JobResult:
    """The structured outcome of one job.

    ``status`` is one of :data:`STATUSES`; ``result`` carries the
    kind-specific payload on success (see
    :meth:`repro.races.detect.DetectionResult.to_payload` and
    :meth:`repro.repair.engine.RepairResult.to_payload`); ``error``
    carries ``{category, message, line, column[, traceback]}`` on
    failure.  ``cached``/``coalesced`` record how the batch layer
    satisfied the job without (fully) executing it.  ``timings`` maps
    pipeline phase names to total seconds spent in that phase while the
    job ran (from the per-job telemetry session) and ``counters`` holds
    the session's runtime counters; both are ``None`` for cached,
    coalesced and supervisor-assigned results.
    """

    #: Bumped for the ``trace_id`` field (schema 3; 2 added
    #: ``timings``/``counters``).  The result cache includes this
    #: constant in its keys, so old stored entries simply stop being
    #: hit — they are never mis-parsed.
    SCHEMA = 3

    __slots__ = ("status", "kind", "source_name", "result", "error",
                 "elapsed_s", "cached", "coalesced", "worker_pid",
                 "timings", "counters", "trace_id")

    def __init__(self, status: str, kind: str, source_name: str,
                 result: Optional[Dict[str, Any]] = None,
                 error: Optional[Dict[str, Any]] = None,
                 elapsed_s: float = 0.0, cached: bool = False,
                 coalesced: bool = False,
                 worker_pid: Optional[int] = None,
                 timings: Optional[Dict[str, float]] = None,
                 counters: Optional[Dict[str, int]] = None,
                 trace_id: Optional[str] = None) -> None:
        if status not in STATUSES:
            raise ValueError(f"unknown status {status!r}")
        self.status = status
        self.kind = kind
        self.source_name = source_name
        self.result = result
        self.error = error
        self.elapsed_s = elapsed_s
        self.cached = cached
        self.coalesced = coalesced
        self.worker_pid = worker_pid
        self.timings = timings
        self.counters = counters
        #: the distributed trace this result belongs to (from
        #: ``Job.trace``); lets operators jump from a result to
        #: ``repro trace show``.
        self.trace_id = trace_id

    # -- constructors --------------------------------------------------

    @classmethod
    def ok(cls, job: Job, payload: Dict[str, Any],
           elapsed_s: float) -> "JobResult":
        return cls("ok", job.kind, job.source_name, result=payload,
                   elapsed_s=elapsed_s)

    @classmethod
    def failure(cls, job: Job, error: BaseException,
                elapsed_s: float = 0.0,
                status: str = "error") -> "JobResult":
        category = _error_category(error)
        detail: Dict[str, Any] = {
            "category": category,
            "message": getattr(error, "bare_message", None) or str(error),
        }
        if isinstance(error, SourceError):
            detail["line"] = error.line
            detail["column"] = error.column
        if category == "internal":
            detail["traceback"] = traceback.format_exc()
        return cls(status, job.kind, job.source_name, error=detail,
                   elapsed_s=elapsed_s)

    @classmethod
    def interrupted(cls, job: Job, status: str, message: str,
                    elapsed_s: float = 0.0) -> "JobResult":
        """A supervisor-assigned outcome: timeout, crash, cancellation."""
        return cls(status, job.kind, job.source_name,
                   error={"category": status, "message": message},
                   elapsed_s=elapsed_s)

    # -- predicates ----------------------------------------------------

    @property
    def is_deterministic(self) -> bool:
        """Would re-running the job necessarily produce this result
        again?  Success and deterministic error categories: yes.
        Timeouts, crashes, cancellations and internal errors: no."""
        if self.status == "ok":
            return True
        if self.status != "error" or self.error is None:
            return False
        return self.error.get("category") in DETERMINISTIC_ERRORS

    # -- serialization -------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": self.SCHEMA,
            "status": self.status,
            "kind": self.kind,
            "source_name": self.source_name,
            "result": self.result,
            "error": self.error,
            "elapsed_s": round(self.elapsed_s, 6),
            "cached": self.cached,
            "coalesced": self.coalesced,
            "worker_pid": self.worker_pid,
            "timings": self.timings,
            "counters": self.counters,
            "trace_id": self.trace_id,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "JobResult":
        if data.get("schema") != cls.SCHEMA:
            raise ValueError(
                f"unsupported JobResult schema {data.get('schema')!r}")
        return cls(status=data["status"], kind=data["kind"],
                   source_name=data.get("source_name", "<job>"),
                   result=data.get("result"), error=data.get("error"),
                   elapsed_s=data.get("elapsed_s", 0.0),
                   cached=data.get("cached", False),
                   coalesced=data.get("coalesced", False),
                   worker_pid=data.get("worker_pid"),
                   timings=data.get("timings"),
                   counters=data.get("counters"),
                   trace_id=data.get("trace_id"))

    def describe(self) -> str:
        """One human line, for batch progress output."""
        origin = "cache" if self.cached else (
            "coalesced" if self.coalesced else "run")
        if self.status == "ok":
            detail = self.result.get("summary", "ok") if self.result else "ok"
        else:
            message = (self.error or {}).get("message", self.status)
            category = (self.error or {}).get("category", self.status)
            detail = f"{category}: {message}"
        return (f"{self.source_name}: {self.status} "
                f"[{origin}, {self.elapsed_s * 1000:.1f} ms] {detail}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"JobResult({self.status}, {self.source_name!r})"


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------

def run_job(job: Job) -> JobResult:
    """Execute one job in this process and capture every library error.

    Anything the repro library can raise — lexer, parser, validator,
    interpreter, repair engine — becomes a structured ``error`` result;
    an unexpected exception becomes an ``internal`` error with its
    traceback.  Only a genuine process death (the pool's department)
    escapes this function.
    """
    from .. import telemetry
    from ..runtime import get_default_engine, set_default_engine
    from ..runtime.values import reset_ids

    start = time.perf_counter()
    previous_engine = get_default_engine()
    # Heap addresses (array/struct/cell ids) appear verbatim in race
    # reports; restart allocation so a warm worker process reports the
    # same addresses as a fresh single-shot invocation.
    reset_ids()
    # Per-job telemetry session: phase timings and runtime counters are
    # harvested into the result so the pool can aggregate them (the
    # server's /metrics).  Installed per job — a warm worker never leaks
    # one job's spans into the next.
    tel = telemetry.TelemetrySession(f"job:{job.source_name}").install()
    try:
        # One "job" root span brackets the whole pipeline, so the
        # distributed trace shows dispatch→start latency and every
        # phase hangs off a single per-job node.
        with tel.span("job", category="job", kind=job.kind,
                      source=job.source_name):
            outcome = _execute(job, start)
    except Exception as error:
        outcome = JobResult.failure(job, error, time.perf_counter() - start)
    finally:
        tel.uninstall()
        set_default_engine(previous_engine)
    outcome.timings = {name: round(total, 6)
                       for name, total in tel.phase_totals().items()}
    outcome.counters = tel.counters.as_dict()
    trace = telemetry.TraceContext.from_dict(job.trace)
    if trace is not None:
        outcome.trace_id = trace.trace_id
        log = telemetry.get_tracelog()
        if log is not None:
            try:
                log.session(tel, trace, job=job.source_name,
                            status=outcome.status)
            except Exception:  # pragma: no cover - tracing must not fail jobs
                pass
    return outcome


def _execute(job: Job, start: float) -> JobResult:
    """The kind dispatch of :func:`run_job` (its ``job`` span body)."""
    from ..lang import parse, serial_elision, strip_finishes, validate
    from ..runtime import BUILTIN_NAMES, set_default_engine

    if job.engine:
        set_default_engine(job.engine)
    program = parse(job.source, source_name=job.source_name)
    validate(program, BUILTIN_NAMES)
    if job.strip_finishes:
        program = strip_finishes(program)
    if job.kind == "detect":
        from ..races import detect_races

        detection = detect_races(program, job.args,
                                 algorithm=job.algorithm,
                                 max_ops=job.max_ops)
        payload = detection.to_payload()
    elif job.kind == "repair":
        from ..repair import repair_program

        repair = repair_program(program, job.args,
                                algorithm=job.algorithm,
                                max_iterations=job.max_iterations,
                                max_ops=job.max_ops,
                                reuse_trace=job.replay,
                                incremental=job.incremental)
        payload = repair.to_payload()
    else:  # measure
        from ..graph import measure_program

        if job.sequential:
            program = serial_elision(program)
        schedule = measure_program(program, job.args,
                                   processors=job.processors,
                                   max_ops=job.max_ops)
        payload = {
            "work": schedule.work,
            "span": schedule.span,
            "makespan": schedule.makespan,
            "processors": job.processors,
            "sequential": job.sequential,
            "speedup": schedule.speedup,
            "parallelism": schedule.parallelism,
        }
    return JobResult.ok(job, payload, time.perf_counter() - start)
