"""Benchmark registry: Table 1 of the paper, with this reproduction's
input sizes.

The *repair* sizes are the paper's (column 4 of Table 1).  The
*performance* sizes are scaled down from the paper's column 5: the paper
measures wall-clock on a 12-core JVM, while we measure simulated time
units on the computation graph of an interpreted execution, so only the
DAG shape matters — each scaled input preserves the benchmark's asymptotic
structure at a few million interpreter operations.  The *test* sizes are
tiny inputs for the unit/integration suite.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from ..lang import ast, parse
from .programs import SOURCES


class BenchmarkSpec:
    """One benchmark: its source and canonical input sizes."""

    def __init__(self, name: str, suite: str, description: str,
                 repair_args: Tuple, perf_args: Tuple, test_args: Tuple,
                 paper_repair_input: str, paper_perf_input: str) -> None:
        self.name = name
        self.suite = suite
        self.description = description
        self.repair_args = repair_args
        self.perf_args = perf_args
        self.test_args = test_args
        #: the paper's Table 1 wording for the two input-size columns
        self.paper_repair_input = paper_repair_input
        self.paper_perf_input = paper_perf_input

    @property
    def source(self) -> str:
        return SOURCES[self.name]

    def parse(self) -> ast.Program:
        """A fresh AST of the original (race-free) benchmark."""
        return parse(self.source, source_name=self.name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BenchmarkSpec({self.name})"


_SPECS = [
    BenchmarkSpec(
        "fibonacci", "HJ Bench", "Compute nth Fibonacci number",
        repair_args=(16,), perf_args=(21,), test_args=(8,),
        paper_repair_input="16", paper_perf_input="40"),
    BenchmarkSpec(
        "quicksort", "HJ Bench", "Quicksort",
        repair_args=(1000,), perf_args=(6000,), test_args=(30,),
        paper_repair_input="1,000", paper_perf_input="100,000,000"),
    BenchmarkSpec(
        "mergesort", "HJ Bench", "Mergesort",
        repair_args=(1000,), perf_args=(6000,), test_args=(30,),
        paper_repair_input="1,000", paper_perf_input="100,000,000"),
    BenchmarkSpec(
        "spanningtree", "HJ Bench",
        "Compute spanning tree of an undirected graph",
        repair_args=(200, 4, 8), perf_args=(1200, 6, 16),
        test_args=(24, 4, 3),
        paper_repair_input="nodes = 200, neighbors = 4",
        paper_perf_input="nodes = 1,000,000, neighbors = 100"),
    BenchmarkSpec(
        "nqueens", "BOTS", "N Queens problem",
        repair_args=(6,), perf_args=(8,), test_args=(5,),
        paper_repair_input="6", paper_perf_input="13"),
    BenchmarkSpec(
        "series", "JGF", "Fourier coefficient analysis",
        repair_args=(25, 60), perf_args=(300, 120), test_args=(6, 10),
        paper_repair_input="rows = 25", paper_perf_input="rows = 100,000"),
    BenchmarkSpec(
        "sor", "JGF", "Successive over-relaxation",
        repair_args=(100, 1, 8), perf_args=(160, 6, 12),
        test_args=(12, 1, 2),
        paper_repair_input="size = 100, iters = 1",
        paper_perf_input="size = 6,000, iters = 100"),
    BenchmarkSpec(
        "crypt", "JGF", "IDEA encryption",
        repair_args=(3000, 8), perf_args=(12000, 12), test_args=(64, 4),
        paper_repair_input="3,000", paper_perf_input="50,000,000"),
    BenchmarkSpec(
        "sparse", "JGF", "Sparse matrix multiplication",
        repair_args=(100, 5, 8), perf_args=(4000, 5, 12),
        test_args=(16, 3, 2),
        paper_repair_input="100", paper_perf_input="2,500,000"),
    BenchmarkSpec(
        "lufact", "JGF", "LU Factorization",
        repair_args=(25, 4), perf_args=(90, 12), test_args=(8, 2),
        paper_repair_input="25 x 25", paper_perf_input="1000 x 1000"),
    BenchmarkSpec(
        "fannkuch", "Shootout", "Indexed-access to tiny integer-sequence",
        repair_args=(6,), perf_args=(8,), test_args=(5,),
        paper_repair_input="6", paper_perf_input="12"),
    BenchmarkSpec(
        "mandelbrot", "Shootout", "Generate Mandelbrot set portable bitmap",
        repair_args=(50, 30), perf_args=(220, 40), test_args=(10, 8),
        paper_repair_input="50", paper_perf_input="10,000"),
]

BENCHMARKS: Dict[str, BenchmarkSpec] = {spec.name: spec for spec in _SPECS}

BENCHMARK_ORDER = [spec.name for spec in _SPECS]


def get_benchmark(name: str) -> BenchmarkSpec:
    """Look up a benchmark by name; raises KeyError with suggestions."""
    spec = BENCHMARKS.get(name)
    if spec is None:
        known = ", ".join(BENCHMARK_ORDER)
        raise KeyError(f"unknown benchmark {name!r}; known: {known}")
    return spec


def all_benchmarks(subset: Optional[Sequence[str]] = None):
    """All specs in Table 1 order (optionally a named subset)."""
    names = BENCHMARK_ORDER if subset is None else list(subset)
    return [get_benchmark(name) for name in names]
