"""Experiment drivers: one function per table/figure of the paper.

Every driver returns a list of row dictionaries (one per benchmark) plus
there is a plain-text renderer, so the same code backs the pytest-benchmark
suite, the EXPERIMENTS.md generator and the CLI.

Timing methodology: wall-clock (`time.perf_counter`) around the same
phases the paper times — sequential uninstrumented execution (HJ-Seq),
instrumented detection + S-DPST construction, and the dynamic + static
placement passes.  Parallel execution times (Figure 16) are simulated
time units from greedy scheduling of the computation graph (see
DESIGN.md's substitution table).
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence

from ..dpst.builder import DpstBuilder
from ..graph import ComputationGraph, greedy_schedule
from ..lang import serial_elision, strip_finishes
from ..races import detect_races
from ..repair import RepairResult, repair_program
from ..runtime import Interpreter, run_program
from .students import run_student_experiment
from .suite import BenchmarkSpec, all_benchmarks

DEFAULT_PROCESSORS = 12


# ----------------------------------------------------------------------
# Shared helpers
# ----------------------------------------------------------------------

def _schedule(program, args, processors: int):
    """Run instrumented (structure only) and schedule on P workers."""
    builder = DpstBuilder()
    Interpreter(program, builder).run(args)
    graph = ComputationGraph.from_dpst(builder.finish())
    return greedy_schedule(graph, processors)


def repair_benchmark(spec: BenchmarkSpec, algorithm: str = "mrw",
                     args: Optional[Sequence] = None) -> RepairResult:
    """Strip the benchmark's finishes and repair it on the repair input."""
    buggy = strip_finishes(spec.parse())
    return repair_program(buggy, args if args is not None
                          else spec.repair_args, algorithm=algorithm)


# ----------------------------------------------------------------------
# Table 1 — the benchmark suite
# ----------------------------------------------------------------------

def table1(subset: Optional[Sequence[str]] = None) -> List[Dict]:
    """Benchmark list with paper and reproduction input sizes."""
    rows = []
    for spec in all_benchmarks(subset):
        rows.append({
            "source": spec.suite,
            "benchmark": spec.name,
            "description": spec.description,
            "paper_repair_input": spec.paper_repair_input,
            "repair_args": spec.repair_args,
            "paper_perf_input": spec.paper_perf_input,
            "perf_args": spec.perf_args,
        })
    return rows


# ----------------------------------------------------------------------
# Figure 16 — sequential vs original vs repaired performance
# ----------------------------------------------------------------------

def figure16(subset: Optional[Sequence[str]] = None,
             processors: int = DEFAULT_PROCESSORS,
             use_perf_args: bool = True) -> List[Dict]:
    """Simulated execution times of the sequential, original-parallel and
    repaired-parallel versions of each benchmark (paper: 12 cores).

    The repair itself runs on the repair-mode input; the repaired program
    is then *measured* on the performance input — exactly the paper's
    workflow (Section 7.1).
    """
    rows = []
    for spec in all_benchmarks(subset):
        original = spec.parse()
        args = spec.perf_args if use_perf_args else spec.test_args
        repaired = repair_benchmark(spec).repaired
        seq = _schedule(serial_elision(original), args, 1)
        orig = _schedule(original, args, processors)
        rep = _schedule(repaired, args, processors)
        rows.append({
            "benchmark": spec.name,
            "sequential": seq.makespan,
            "original_parallel": orig.makespan,
            "repaired_parallel": rep.makespan,
            "original_speedup": round(seq.makespan / orig.makespan, 2),
            "repaired_speedup": round(seq.makespan / rep.makespan, 2),
            "original_cpl": orig.span,
            "repaired_cpl": rep.span,
        })
    return rows


# ----------------------------------------------------------------------
# Table 2 — time for program repair (MRW, repair-mode inputs)
# ----------------------------------------------------------------------

def table2(subset: Optional[Sequence[str]] = None,
           use_repair_args: bool = True) -> List[Dict]:
    """HJ-Seq time, detection time, #S-DPST nodes, #races, repair time."""
    rows = []
    for spec in all_benchmarks(subset):
        args = spec.repair_args if use_repair_args else spec.test_args
        buggy = strip_finishes(spec.parse())
        start = time.perf_counter()
        run_program(buggy, args)
        seq_ms = (time.perf_counter() - start) * 1000.0
        result = repair_program(buggy, args)
        first = result.iterations[0].detection if result.iterations else \
            result.final_detection
        rows.append({
            "benchmark": spec.name,
            "hj_seq_ms": round(seq_ms, 2),
            "detection_ms": round(first.elapsed_s * 1000.0, 2),
            "dpst_nodes": first.dpst_node_count,
            "races": len(first.report),
            "repair_s": round(result.repair_time_s, 3),
            "iterations": len(result.iterations),
            "converged": result.converged,
        })
    return rows


# ----------------------------------------------------------------------
# Table 3 — SRW vs MRW repair-time comparison
# ----------------------------------------------------------------------

def table3(subset: Optional[Sequence[str]] = None,
           use_repair_args: bool = True) -> List[Dict]:
    """Total repair time with SRW (repair run + confirming run) vs MRW.

    With SRW the tool may need several repair iterations because a single
    run under-reports races; the paper observed exactly two runs per
    benchmark (one to repair, one to confirm).
    """
    rows = []
    for spec in all_benchmarks(subset):
        args = spec.repair_args if use_repair_args else spec.test_args
        results = {}
        for algorithm in ("srw", "mrw"):
            buggy = strip_finishes(spec.parse())
            results[algorithm] = repair_program(buggy, args,
                                                algorithm=algorithm)
        srw, mrw = results["srw"], results["mrw"]
        srw_second_ms = srw.final_detection.elapsed_s * 1000.0
        rows.append({
            "benchmark": spec.name,
            "srw_detection_ms": round(srw.detection_time_s * 1000.0, 2),
            "mrw_detection_ms": round(mrw.detection_time_s * 1000.0, 2),
            "srw_repair_s": round(srw.repair_time_s, 3),
            "mrw_repair_s": round(mrw.repair_time_s, 3),
            "srw_second_detection_ms": round(srw_second_ms, 2),
            "srw_total_s": round(srw.detection_time_s + srw.repair_time_s, 3),
            "mrw_total_s": round(mrw.detection_time_s + mrw.repair_time_s, 3),
            "srw_runs": len(srw.iterations) + 1,
            "mrw_runs": len(mrw.iterations) + 1,
        })
    return rows


# ----------------------------------------------------------------------
# Table 4 — number of races: SRW vs MRW
# ----------------------------------------------------------------------

def table4(subset: Optional[Sequence[str]] = None,
           use_repair_args: bool = True) -> List[Dict]:
    """Races reported by one SRW run vs one MRW run on the buggy program."""
    rows = []
    for spec in all_benchmarks(subset):
        args = spec.repair_args if use_repair_args else spec.test_args
        buggy = strip_finishes(spec.parse())
        srw = detect_races(buggy, args, algorithm="srw")
        mrw = detect_races(buggy, args, algorithm="mrw")
        rows.append({
            "benchmark": spec.name,
            "srw_races": len(srw.report),
            "mrw_races": len(mrw.report),
            "ratio": round(len(mrw.report) / max(1, len(srw.report)), 2),
        })
    return rows


# ----------------------------------------------------------------------
# Section 7.4 — student homework
# ----------------------------------------------------------------------

def students() -> Dict:
    """Grade the synthetic 59-submission population (5 / 29 / 25)."""
    return run_student_experiment()


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------

def format_rows(rows: List[Dict], title: str = "") -> str:
    """Render row dictionaries as an aligned text table."""
    if not rows:
        return f"{title}\n(no rows)"
    columns = list(rows[0].keys())
    widths = {c: max(len(str(c)), *(len(str(r[c])) for r in rows))
              for c in columns}
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(str(c).ljust(widths[c]) for c in columns)
    lines.append(header)
    lines.append("-" * len(header))
    for row in rows:
        lines.append("  ".join(str(row[c]).ljust(widths[c])
                               for c in columns))
    return "\n".join(lines)


def render_figure16_chart(rows: List[Dict], width: int = 56) -> str:
    """ASCII rendition of Figure 16's grouped bars.

    Three bars per benchmark (sequential / original parallel / repaired
    parallel), scaled per benchmark so the *relative* heights — the
    figure's message — are readable in a terminal.
    """
    lines = ["Figure 16: simulated execution time (12 workers; bars scaled "
             "per benchmark)"]
    for row in rows:
        values = [("seq ", row["sequential"]),
                  ("orig", row["original_parallel"]),
                  ("fix ", row["repaired_parallel"])]
        peak = max(v for _, v in values) or 1
        lines.append(f"{row['benchmark']}")
        for label, value in values:
            bar = "#" * max(1, round(width * value / peak))
            lines.append(f"  {label} |{bar} {value}")
    return "\n".join(lines)


def run_all(subset: Optional[Sequence[str]] = None,
            use_full_inputs: bool = True) -> str:
    """Run every experiment and render a report (the EXPERIMENTS backend)."""
    sections = [
        format_rows(table1(subset), "Table 1: benchmark suite"),
        format_rows(figure16(subset, use_perf_args=use_full_inputs),
                    "Figure 16: simulated execution times (12 workers)"),
        format_rows(table2(subset, use_repair_args=use_full_inputs),
                    "Table 2: time for program repair (MRW)"),
        format_rows(table3(subset, use_repair_args=use_full_inputs),
                    "Table 3: SRW vs MRW repair time"),
        format_rows(table4(subset, use_repair_args=use_full_inputs),
                    "Table 4: races detected, SRW vs MRW"),
    ]
    result = students()
    sections.append(
        "Section 7.4: student homework grading\n"
        f"total={result['total']} racy={result['racy']} "
        f"over-synchronized={result['over_synchronized']} "
        f"matched={result['matched']} "
        f"classifier_mismatches={len(result['mismatches'])}")
    return "\n\n".join(sections)
