"""The student-homework experiment (Section 7.4).

The paper's assignment: given a parallel quicksort containing async
statements but no finish statements, insert finish statements that remove
all data races while keeping maximal parallelism.  Out of 59 submissions,
5 still had races, 29 were over-synchronized, and 25 matched the tool.

We reproduce the *grader*: a submission is

* ``RACY`` if the detector still finds races on the test input;
* ``OVER_SYNCHRONIZED`` if it is race-free but its critical path length
  exceeds the tool-repaired reference (reduced parallelism);
* ``MATCHED`` if it is race-free with the reference's CPL (equally
  parallel — the tool's own placement or an equivalent one).

The population is synthetic (we have no access to the original
submissions): variant templates of the assignment reflecting the common
mistakes, sampled to the paper's class sizes.  The distribution is an
*input* to this experiment; the classifier is what is being reproduced.
"""

from __future__ import annotations

import enum
from typing import List, Sequence, Tuple

from ..graph import measure_program
from ..lang import ast, parse
from ..races import detect_races
from ..repair import repair_for_inputs
from ..runtime.builtins import DeterministicRng

_COMMON = """
def partition(A, M, N) {
    var pivot = A[N];
    var i = M - 1;
    for (var j = M; j < N; j = j + 1) {
        if (A[j] <= pivot) {
            i = i + 1;
            var t = A[i];
            A[i] = A[j];
            A[j] = t;
        }
    }
    var t2 = A[i + 1];
    A[i + 1] = A[N];
    A[N] = t2;
    return i + 1;
}

def main(n) {
    seed_rand(74001);
    var A = new int[n];
    for (var i = 0; i < n; i = i + 1) {
        A[i] = rand_int(100000);
    }
    %MAIN_CALL%
    var sorted = true;
    for (var i = 1; i < n; i = i + 1) {
        if (A[i - 1] > A[i]) {
            sorted = false;
        }
    }
    print(sorted);
}
"""


def _assemble(quicksort_body: str, main_call: str) -> str:
    return (_COMMON.replace("%MAIN_CALL%", main_call)
            + "\n" + quicksort_body)


#: The handout: asyncs present, no finish anywhere.
ASSIGNMENT = _assemble(
    """
def quicksort(A, M, N) {
    if (M < N) {
        var p = partition(A, M, N);
        async quicksort(A, M, p - 1);
        async quicksort(A, p + 1, N);
    }
}
""",
    "quicksort(A, 0, n - 1);")


# ----------------------------------------------------------------------
# Submission templates
# ----------------------------------------------------------------------

#: Race-free with maximal parallelism: the tool's placement and
#: equivalent alternatives.
MATCHED_TEMPLATES: List[Tuple[str, str]] = [
    ("finish around the two recursive asyncs (the tool's output)", _assemble(
        """
def quicksort(A, M, N) {
    if (M < N) {
        var p = partition(A, M, N);
        finish {
            async quicksort(A, M, p - 1);
            async quicksort(A, p + 1, N);
        }
    }
}
""", "quicksort(A, 0, n - 1);")),
    ("single finish around the top-level call (the paper's line 11)",
     _assemble(
        """
def quicksort(A, M, N) {
    if (M < N) {
        var p = partition(A, M, N);
        async quicksort(A, M, p - 1);
        async quicksort(A, p + 1, N);
    }
}
""", "finish { quicksort(A, 0, n - 1); }")),
    ("finish around partition and both asyncs", _assemble(
        """
def quicksort(A, M, N) {
    if (M < N) {
        finish {
            var p = partition(A, M, N);
            async quicksort(A, M, p - 1);
            async quicksort(A, p + 1, N);
        }
    }
}
""", "quicksort(A, 0, n - 1);")),
    ("join only the second async, everything joined again in main",
     _assemble(
        """
def quicksort(A, M, N) {
    if (M < N) {
        var p = partition(A, M, N);
        async quicksort(A, M, p - 1);
        finish {
            async quicksort(A, p + 1, N);
        }
    }
}
""", "finish { quicksort(A, 0, n - 1); }")),
]

#: Race-free but with reduced parallelism.
OVERSYNC_TEMPLATES: List[Tuple[str, str]] = [
    ("each async in its own finish (fully serial)", _assemble(
        """
def quicksort(A, M, N) {
    if (M < N) {
        var p = partition(A, M, N);
        finish {
            async quicksort(A, M, p - 1);
        }
        finish {
            async quicksort(A, p + 1, N);
        }
    }
}
""", "quicksort(A, 0, n - 1);")),
    ("first async serialized before the second", _assemble(
        """
def quicksort(A, M, N) {
    if (M < N) {
        var p = partition(A, M, N);
        finish {
            async quicksort(A, M, p - 1);
        }
        async quicksort(A, p + 1, N);
    }
}
""", "finish { quicksort(A, 0, n - 1); }")),
    ("nested finishes serializing both asyncs", _assemble(
        """
def quicksort(A, M, N) {
    if (M < N) {
        var p = partition(A, M, N);
        finish {
            finish {
                async quicksort(A, M, p - 1);
            }
            async quicksort(A, p + 1, N);
        }
    }
}
""", "quicksort(A, 0, n - 1);")),
]

#: Still racy: missing or misplaced finishes.
RACY_TEMPLATES: List[Tuple[str, str]] = [
    ("no finish at all", ASSIGNMENT),
    ("finish around only the first async", _assemble(
        """
def quicksort(A, M, N) {
    if (M < N) {
        var p = partition(A, M, N);
        finish {
            async quicksort(A, M, p - 1);
        }
        async quicksort(A, p + 1, N);
    }
}
""", "quicksort(A, 0, n - 1);")),
    ("finish around only the second async", _assemble(
        """
def quicksort(A, M, N) {
    if (M < N) {
        var p = partition(A, M, N);
        async quicksort(A, M, p - 1);
        finish {
            async quicksort(A, p + 1, N);
        }
    }
}
""", "quicksort(A, 0, n - 1);")),
    ("finish around the partition call only", _assemble(
        """
def quicksort(A, M, N) {
    if (M < N) {
        var p = 0;
        finish {
            p = partition(A, M, N);
        }
        async quicksort(A, M, p - 1);
        async quicksort(A, p + 1, N);
    }
}
""", "quicksort(A, 0, n - 1);")),
    ("finish inside the async bodies (no join at the call site)", _assemble(
        """
def quicksort(A, M, N) {
    if (M < N) {
        var p = partition(A, M, N);
        async {
            finish {
                quicksort(A, M, p - 1);
            }
        }
        async {
            finish {
                quicksort(A, p + 1, N);
            }
        }
    }
}
""", "quicksort(A, 0, n - 1);")),
]


class Grade(enum.Enum):
    RACY = "racy"
    OVER_SYNCHRONIZED = "over-synchronized"
    MATCHED = "matched"


class Submission:
    """One (synthetic) student submission."""

    def __init__(self, ident: int, kind: Grade, description: str,
                 source: str) -> None:
        self.ident = ident
        self.expected = kind
        self.description = description
        self.source = source

    def parse(self) -> ast.Program:
        return parse(self.source, source_name=f"submission-{self.ident}")


#: Default grading inputs.  Several inputs keep the reference honest: a
#: single test case can be repaired by an input-specific placement (e.g.
#: a finish joining only the right recursion when the left happens to be
#: empty for that array), which would be a misleading grading key.
GRADING_INPUTS: Tuple[Tuple[int, ...], ...] = ((40,), (60,), (75,))

#: Relative tolerance when comparing critical path lengths: spawn ticks
#: and block nesting differ by a few cost units between textually
#: different but equally parallel placements.
SPAN_TOLERANCE = 0.02


def tool_reference(
        inputs: Sequence[Sequence[int]] = GRADING_INPUTS) -> ast.Program:
    """The repair tool's own output on the assignment (the grading key),
    repaired iteratively over all grading inputs (Section 2)."""
    return repair_for_inputs(parse(ASSIGNMENT), inputs).repaired


def grade_submission(program: ast.Program, reference: ast.Program,
                     inputs: Sequence[Sequence[int]] = GRADING_INPUTS
                     ) -> Grade:
    """Grade one submission against the tool's repair (see module doc)."""
    for args in inputs:
        detection = detect_races(program, args)
        if not detection.report.is_race_free:
            return Grade.RACY
    args = inputs[-1]
    span_sub = measure_program(program, args).span
    span_ref = measure_program(reference, args).span
    if span_sub > span_ref * (1.0 + SPAN_TOLERANCE):
        return Grade.OVER_SYNCHRONIZED
    return Grade.MATCHED


def synthesize_population(racy: int = 5, oversync: int = 29,
                          matched: int = 25,
                          seed: int = 59) -> List[Submission]:
    """A deterministic population with the paper's class sizes (5/29/25),
    sampled from the variant templates and shuffled."""
    rng = DeterministicRng(seed)
    submissions: List[Submission] = []

    def draw(count: int, kind: Grade,
             templates: List[Tuple[str, str]]) -> None:
        for _ in range(count):
            desc, source = templates[rng.next_int(len(templates))]
            submissions.append(Submission(0, kind, desc, source))

    draw(racy, Grade.RACY, RACY_TEMPLATES)
    draw(oversync, Grade.OVER_SYNCHRONIZED, OVERSYNC_TEMPLATES)
    draw(matched, Grade.MATCHED, MATCHED_TEMPLATES)
    # Fisher-Yates shuffle with the deterministic RNG.
    for i in range(len(submissions) - 1, 0, -1):
        j = rng.next_int(i + 1)
        submissions[i], submissions[j] = submissions[j], submissions[i]
    for ident, sub in enumerate(submissions, start=1):
        sub.ident = ident
    return submissions


def population_sources(seed: int = 59) -> List[Tuple[str, str]]:
    """The synthetic corpus as ``(name, source)`` pairs — the batch
    service's canonical classroom workload (many submissions, few
    distinct programs)."""
    return [(f"submission-{sub.ident:03d}.hj", sub.source)
            for sub in synthesize_population(seed=seed)]


def write_corpus(directory: str, seed: int = 59) -> List[str]:
    """Materialize the corpus as ``.hj`` files for ``repro batch``;
    returns the written paths in submission order."""
    import os

    os.makedirs(directory, exist_ok=True)
    paths = []
    for name, source in population_sources(seed=seed):
        path = os.path.join(directory, name)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(source)
        paths.append(path)
    return paths


def run_student_experiment(
        inputs: Sequence[Sequence[int]] = GRADING_INPUTS,
        seed: int = 59) -> dict:
    """Grade the synthetic population; returns per-class counts."""
    reference = tool_reference(inputs)
    counts = {grade: 0 for grade in Grade}
    mismatches = []
    for sub in synthesize_population(seed=seed):
        grade = grade_submission(sub.parse(), reference, inputs)
        counts[grade] += 1
        if grade is not sub.expected:
            mismatches.append((sub.ident, sub.expected, grade,
                               sub.description))
    return {
        "total": sum(counts.values()),
        "racy": counts[Grade.RACY],
        "over_synchronized": counts[Grade.OVER_SYNCHRONIZED],
        "matched": counts[Grade.MATCHED],
        "mismatches": mismatches,
    }
