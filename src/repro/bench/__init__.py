"""Benchmarks, workloads and experiment harnesses (Section 7)."""

from .harness import (
    figure16,
    format_rows,
    repair_benchmark,
    run_all,
    students,
    table1,
    table2,
    table3,
    table4,
)
from .programs import SOURCES
from .students import (
    ASSIGNMENT,
    Grade,
    Submission,
    grade_submission,
    run_student_experiment,
    synthesize_population,
    tool_reference,
)
from .suite import BENCHMARK_ORDER, BENCHMARKS, BenchmarkSpec, all_benchmarks, get_benchmark

__all__ = [
    "SOURCES",
    "BENCHMARKS",
    "BENCHMARK_ORDER",
    "BenchmarkSpec",
    "all_benchmarks",
    "get_benchmark",
    "repair_benchmark",
    "table1",
    "table2",
    "table3",
    "table4",
    "figure16",
    "students",
    "run_all",
    "format_rows",
    "ASSIGNMENT",
    "Grade",
    "Submission",
    "grade_submission",
    "synthesize_population",
    "tool_reference",
    "run_student_experiment",
]
