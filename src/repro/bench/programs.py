"""The twelve benchmarks of Table 1, written in mini-HJ.

Each source below is the *original* (expert-written) parallel version:
async statements express the parallelism and finish statements make it
race-free.  The evaluation (Section 7.1) strips every finish and lets the
repair tool re-insert synchronization; these sources are therefore written
so that

* the finish-ful version has **no data races** for any input (loop
  variables are always copied into per-iteration locals before being
  captured by an async, tasks write disjoint cells, reductions go through
  per-task slots combined after the join), and
* the finish-less version races exactly where the paper's benchmarks do
  (task output read before the join, cross-phase neighbour reads, ...).

Substitutions versus the original suites are documented in DESIGN.md; the
most notable one is Spanning Tree, which uses Boruvka rounds with
per-chunk reduction slots instead of atomic compare-and-swap (mini-HJ has
no atomics, and the repair tool targets pure async/finish programs).
"""

from __future__ import annotations

FIBONACCI = """
// HJ Bench: Fibonacci -- recursive task parallelism through boxed results.
struct BoxInteger { v }

def fib(ret, n) {
    if (n < 2) {
        ret.v = n;
        return;
    }
    var X = new BoxInteger();
    var Y = new BoxInteger();
    finish {
        async fib(X, n - 1);
        async fib(Y, n - 2);
    }
    ret.v = X.v + Y.v;
}

def main(n) {
    var result = new BoxInteger();
    finish {
        async fib(result, n);
    }
    print("fib", n, "=", result.v);
}
"""

QUICKSORT = """
// HJ Bench: Quicksort -- recursive asyncs over disjoint partitions.
def partition(A, M, N) {
    var pivot = A[N];
    var i = M - 1;
    for (var j = M; j < N; j = j + 1) {
        if (A[j] <= pivot) {
            i = i + 1;
            var t = A[i];
            A[i] = A[j];
            A[j] = t;
        }
    }
    var t2 = A[i + 1];
    A[i + 1] = A[N];
    A[N] = t2;
    return i + 1;
}

def quicksort(A, M, N) {
    if (M < N) {
        var p = partition(A, M, N);
        async quicksort(A, M, p - 1);
        async quicksort(A, p + 1, N);
    }
}

def main(n) {
    seed_rand(12001);
    var A = new int[n];
    for (var i = 0; i < n; i = i + 1) {
        A[i] = rand_int(1000000);
    }
    finish {
        quicksort(A, 0, n - 1);
    }
    var sorted = true;
    var checksum = 0;
    for (var i = 0; i < n; i = i + 1) {
        if (i > 0 && A[i - 1] > A[i]) {
            sorted = false;
        }
        checksum = (checksum + A[i]) % 1000003;
    }
    assert_true(sorted, "quicksort output must be sorted");
    print("quicksort checksum", checksum);
}
"""

MERGESORT = """
// HJ Bench: Mergesort -- the paper's Figure 1 pattern (finish around the
// two recursive asyncs, merge afterwards).
def merge(A, tmp, lo, mid, hi) {
    var i = lo;
    var j = mid + 1;
    var k = lo;
    while (i <= mid && j <= hi) {
        if (A[i] <= A[j]) {
            tmp[k] = A[i];
            i = i + 1;
        } else {
            tmp[k] = A[j];
            j = j + 1;
        }
        k = k + 1;
    }
    while (i <= mid) {
        tmp[k] = A[i];
        i = i + 1;
        k = k + 1;
    }
    while (j <= hi) {
        tmp[k] = A[j];
        j = j + 1;
        k = k + 1;
    }
    for (var t = lo; t <= hi; t = t + 1) {
        A[t] = tmp[t];
    }
}

def mergesort(A, tmp, lo, hi) {
    if (lo >= hi) {
        return;
    }
    var mid = lo + (hi - lo) / 2;
    finish {
        async mergesort(A, tmp, lo, mid);
        async mergesort(A, tmp, mid + 1, hi);
    }
    merge(A, tmp, lo, mid, hi);
}

def main(n) {
    seed_rand(12002);
    var A = new int[n];
    var tmp = new int[n];
    for (var i = 0; i < n; i = i + 1) {
        A[i] = rand_int(1000000);
    }
    mergesort(A, tmp, 0, n - 1);
    var sorted = true;
    var checksum = 0;
    for (var i = 0; i < n; i = i + 1) {
        if (i > 0 && A[i - 1] > A[i]) {
            sorted = false;
        }
        checksum = (checksum + A[i]) % 1000003;
    }
    assert_true(sorted, "mergesort output must be sorted");
    print("mergesort checksum", checksum);
}
"""

SPANNING_TREE = """
// HJ Bench: Spanning Tree (Boruvka variant).  Each round, worker tasks
// scan disjoint edge chunks and record, per chunk, the lightest edge
// leaving each component; a sequential pass merges components with a
// union-find.  Weights are unique, so the run is deterministic.
def uf_find(parent, x) {
    var r = x;
    while (parent[r] != r) {
        r = parent[r];
    }
    while (parent[x] != r) {
        var nxt = parent[x];
        parent[x] = r;
        x = nxt;
    }
    return r;
}

def scan_chunk(eu, ev, ew, comp, best, nodes, lo, hi) {
    for (var e = lo; e < hi; e = e + 1) {
        var cu = comp[eu[e]];
        var cv = comp[ev[e]];
        if (cu != cv) {
            if (best[cu] == -1 || ew[e] < ew[best[cu]]) {
                best[cu] = e;
            }
            if (best[cv] == -1 || ew[e] < ew[best[cv]]) {
                best[cv] = e;
            }
        }
    }
}

def main(nodes, degree, chunks) {
    seed_rand(12003);
    var nedges = nodes * degree / 2;
    var eu = new int[nedges];
    var ev = new int[nedges];
    var ew = new int[nedges];
    for (var e = 0; e < nedges; e = e + 1) {
        // A ring plus random chords keeps the graph connected.
        if (e < nodes) {
            eu[e] = e % nodes;
            ev[e] = (e + 1) % nodes;
        } else {
            eu[e] = rand_int(nodes);
            ev[e] = rand_int(nodes);
        }
        ew[e] = rand_int(1000) * nedges + e;  // unique weights
    }
    var parent = new int[nodes];
    var comp = new int[nodes];
    for (var i = 0; i < nodes; i = i + 1) {
        parent[i] = i;
        comp[i] = i;
    }
    var bests = new int[chunks][nodes];
    var ncomp = nodes;
    var tree_weight = 0;
    var tree_edges = 0;
    while (ncomp > 1) {
        for (var c = 0; c < chunks; c = c + 1) {
            for (var i = 0; i < nodes; i = i + 1) {
                bests[c][i] = -1;
            }
        }
        var per = (nedges + chunks - 1) / chunks;
        finish {
            for (var c = 0; c < chunks; c = c + 1) {
                var lo = c * per;
                var hi = min(lo + per, nedges);
                var slot = bests[c];
                async scan_chunk(eu, ev, ew, comp, slot, nodes, lo, hi);
            }
        }
        // Sequential reduction + union.
        var merged = 0;
        for (var i = 0; i < nodes; i = i + 1) {
            var bst = -1;
            for (var c = 0; c < chunks; c = c + 1) {
                var cand = bests[c][i];
                if (cand != -1 && (bst == -1 || ew[cand] < ew[bst])) {
                    bst = cand;
                }
            }
            if (bst != -1) {
                var ru = uf_find(parent, eu[bst]);
                var rv = uf_find(parent, ev[bst]);
                if (ru != rv) {
                    parent[ru] = rv;
                    tree_weight = (tree_weight + ew[bst]) % 1000003;
                    tree_edges = tree_edges + 1;
                    merged = merged + 1;
                }
            }
        }
        if (merged == 0) {
            break;
        }
        ncomp = ncomp - merged;
        for (var i = 0; i < nodes; i = i + 1) {
            comp[i] = uf_find(parent, i);
        }
    }
    assert_true(tree_edges == nodes - 1, "spanning tree must span all nodes");
    print("spanning tree edges", tree_edges, "weight", tree_weight);
}
"""

NQUEENS = """
// BOTS: NQueens -- each placement spawns a task; counts come back through
// per-child slots summed after the join.
def safe(board, row, col) {
    for (var r = 0; r < row; r = r + 1) {
        var c = board[r];
        if (c == col || c - (row - r) == col || c + (row - r) == col) {
            return false;
        }
    }
    return true;
}

def count_queens(n, row, board, out, slot) {
    if (row == n) {
        out[slot] = 1;
        return;
    }
    var counts = new int[n];
    finish {
        for (var col = 0; col < n; col = col + 1) {
            if (safe(board, row, col)) {
                var nb = new int[n];
                for (var r = 0; r < row; r = r + 1) {
                    nb[r] = board[r];
                }
                nb[row] = col;
                var cc = col;
                async count_queens(n, row + 1, nb, counts, cc);
            }
        }
    }
    var total = 0;
    for (var col = 0; col < n; col = col + 1) {
        total = total + counts[col];
    }
    out[slot] = total;
}

def main(n) {
    var result = new int[1];
    var board = new int[n];
    count_queens(n, 0, board, result, 0);
    print("nqueens(", n, ") =", result[0]);
}
"""

SERIES = """
// JGF: Series -- Fourier coefficients of f(x) = (x+1)^x approximated by
// the trapezoid rule; one task per coefficient pair.
def coefficient(a, b, k, points) {
    var sa = 0.0;
    var sb = 0.0;
    var pi = 3.141592653589793;
    for (var i = 0; i < points; i = i + 1) {
        var x = (i + 0.5) / points;
        var fx = exp(x * log(x + 1.0));
        sa = sa + fx * cos(2.0 * pi * k * x);
        sb = sb + fx * sin(2.0 * pi * k * x);
    }
    a[k] = sa * 2.0 / points;
    b[k] = sb * 2.0 / points;
}

def main(rows, points) {
    var a = new double[rows];
    var b = new double[rows];
    finish {
        for (var k = 0; k < rows; k = k + 1) {
            var kk = k;
            async coefficient(a, b, kk, points);
        }
    }
    var checksum = 0.0;
    for (var k = 0; k < rows; k = k + 1) {
        checksum = checksum + abs(a[k]) + abs(b[k]);
    }
    print("series checksum", to_int(checksum * 1000.0));
}
"""

SOR = """
// JGF: SOR -- red-black successive over-relaxation; one finish per color
// phase, tasks own disjoint row chunks.
def sweep_rows(G, n, omega, parity, lo, hi) {
    for (var i = lo; i < hi; i = i + 1) {
        if (i % 2 == parity && i > 0 && i < n - 1) {
            var row = G[i];
            var up = G[i - 1];
            var down = G[i + 1];
            for (var j = 1; j < n - 1; j = j + 1) {
                row[j] = omega * 0.25 * (up[j] + down[j] + row[j - 1]
                    + row[j + 1]) + (1.0 - omega) * row[j];
            }
        }
    }
}

def main(n, iters, chunks) {
    seed_rand(12007);
    var G = new double[n][n];
    for (var i = 0; i < n; i = i + 1) {
        for (var j = 0; j < n; j = j + 1) {
            G[i][j] = rand_double();
        }
    }
    var omega = 1.25;
    var per = (n + chunks - 1) / chunks;
    for (var it = 0; it < iters; it = it + 1) {
        for (var parity = 0; parity < 2; parity = parity + 1) {
            finish {
                for (var c = 0; c < chunks; c = c + 1) {
                    var lo = c * per;
                    var hi = min(lo + per, n);
                    var pp = parity;
                    async sweep_rows(G, n, omega, pp, lo, hi);
                }
            }
        }
    }
    var checksum = 0.0;
    for (var i = 0; i < n; i = i + 1) {
        for (var j = 0; j < n; j = j + 1) {
            checksum = checksum + G[i][j];
        }
    }
    print("sor checksum", to_int(checksum * 1000.0));
}
"""

CRYPT = """
// JGF: Crypt -- IDEA-style block transform: multiply mod 2^16+1, add mod
// 2^16, xor; encrypt and decrypt phases each fan out over data chunks and
// the result is verified against the plaintext.
def mul16(a, b) {
    return (a + 1) * (b + 1) % 65537 - 1;
}

def modpow(base, e, m) {
    var result = 1;
    var acc = base % m;
    var left = e;
    while (left > 0) {
        if (left % 2 == 1) {
            result = result * acc % m;
        }
        acc = acc * acc % m;
        left = left / 2;
    }
    return result;
}

def encrypt_chunk(data, out, mk, ak, xk, rounds, lo, hi) {
    for (var i = lo; i < hi; i = i + 1) {
        var x = data[i];
        for (var r = 0; r < rounds; r = r + 1) {
            x = mul16(x, mk[r]);
            x = (x + ak[r]) % 65536;
            x = x ^ xk[r];
        }
        out[i] = x;
    }
}

def decrypt_chunk(data, out, imk, iak, xk, rounds, lo, hi) {
    for (var i = lo; i < hi; i = i + 1) {
        var x = data[i];
        for (var r = rounds - 1; r >= 0; r = r - 1) {
            x = x ^ xk[r];
            x = (x + iak[r]) % 65536;
            x = mul16(x, imk[r]);
        }
        out[i] = x;
    }
}

def main(n, chunks) {
    seed_rand(12008);
    var rounds = 8;
    var mk = new int[rounds];
    var ak = new int[rounds];
    var xk = new int[rounds];
    var imk = new int[rounds];
    var iak = new int[rounds];
    for (var r = 0; r < rounds; r = r + 1) {
        mk[r] = rand_int(65535);
        ak[r] = rand_int(65536);
        xk[r] = rand_int(65536);
        imk[r] = modpow(mk[r] + 1, 65535, 65537) - 1;
        iak[r] = (65536 - ak[r]) % 65536;
    }
    var data = new int[n];
    var ct = new int[n];
    var pt = new int[n];
    for (var i = 0; i < n; i = i + 1) {
        data[i] = rand_int(65536);
    }
    var per = (n + chunks - 1) / chunks;
    finish {
        for (var c = 0; c < chunks; c = c + 1) {
            var lo = c * per;
            var hi = min(lo + per, n);
            async encrypt_chunk(data, ct, mk, ak, xk, rounds, lo, hi);
        }
    }
    finish {
        for (var c = 0; c < chunks; c = c + 1) {
            var lo = c * per;
            var hi = min(lo + per, n);
            async decrypt_chunk(ct, pt, imk, iak, xk, rounds, lo, hi);
        }
    }
    var ok = true;
    var checksum = 0;
    for (var i = 0; i < n; i = i + 1) {
        if (pt[i] != data[i]) {
            ok = false;
        }
        checksum = (checksum + ct[i]) % 1000003;
    }
    assert_true(ok, "decrypt(encrypt(x)) must equal x");
    print("crypt checksum", checksum);
}
"""

SPARSE = """
// JGF: Sparse -- sparse matrix-vector product in compressed row storage;
// tasks own disjoint row chunks of the output vector.
def spmv_rows(val, col, nnz, x, y, lo, hi) {
    for (var i = lo; i < hi; i = i + 1) {
        var sum = 0.0;
        for (var k = 0; k < nnz; k = k + 1) {
            sum = sum + val[i * nnz + k] * x[col[i * nnz + k]];
        }
        y[i] = sum;
    }
}

def main(n, nnz, chunks) {
    seed_rand(12009);
    var val = new double[n * nnz];
    var col = new int[n * nnz];
    var x = new double[n];
    var y = new double[n];
    for (var i = 0; i < n; i = i + 1) {
        x[i] = rand_double();
        for (var k = 0; k < nnz; k = k + 1) {
            val[i * nnz + k] = rand_double();
            col[i * nnz + k] = rand_int(n);
        }
    }
    var per = (n + chunks - 1) / chunks;
    finish {
        for (var c = 0; c < chunks; c = c + 1) {
            var lo = c * per;
            var hi = min(lo + per, n);
            async spmv_rows(val, col, nnz, x, y, lo, hi);
        }
    }
    var checksum = 0.0;
    for (var i = 0; i < n; i = i + 1) {
        checksum = checksum + y[i];
    }
    print("sparse checksum", to_int(checksum * 1000.0));
}
"""

LUFACT = """
// JGF: LUFact -- in-place LU factorization of a diagonally dominant
// matrix (no pivoting needed); each elimination step fans the remaining
// rows out over tasks.
def eliminate_rows(M, n, k, lo, hi) {
    var pivot_row = M[k];
    for (var i = lo; i < hi; i = i + 1) {
        var row = M[i];
        var f = row[k] / pivot_row[k];
        row[k] = f;
        for (var j = k + 1; j < n; j = j + 1) {
            row[j] = row[j] - f * pivot_row[j];
        }
    }
}

def main(n, chunks) {
    seed_rand(12010);
    var M = new double[n][n];
    for (var i = 0; i < n; i = i + 1) {
        for (var j = 0; j < n; j = j + 1) {
            M[i][j] = rand_double();
        }
        M[i][i] = M[i][i] + n;  // diagonal dominance
    }
    for (var k = 0; k < n - 1; k = k + 1) {
        var rows = n - k - 1;
        var nch = min(chunks, rows);
        var per = (rows + nch - 1) / nch;
        finish {
            for (var c = 0; c < nch; c = c + 1) {
                var lo = k + 1 + c * per;
                var hi = min(lo + per, n);
                var kk = k;
                async eliminate_rows(M, n, kk, lo, hi);
            }
        }
    }
    var det_log = 0.0;
    for (var i = 0; i < n; i = i + 1) {
        det_log = det_log + log(abs(M[i][i]));
    }
    print("lufact log|det|", to_int(det_log * 1000.0));
}
"""

FANNKUCH = """
// Shootout: FannKuch -- max pancake flips over all permutations; the
// permutation space is partitioned by first element, one task each.
struct BoxInteger { v }

def count_flips(perm, n) {
    var work = new int[n];
    for (var i = 0; i < n; i = i + 1) {
        work[i] = perm[i];
    }
    var flips = 0;
    while (work[0] != 0) {
        var k = work[0];
        var i = 0;
        var j = k;
        while (i < j) {
            var t = work[i];
            work[i] = work[j];
            work[j] = t;
            i = i + 1;
            j = j - 1;
        }
        flips = flips + 1;
    }
    return flips;
}

def fk_rec(perm, used, depth, n, best) {
    if (depth == n) {
        var f = count_flips(perm, n);
        if (f > best.v) {
            best.v = f;
        }
        return;
    }
    for (var v = 0; v < n; v = v + 1) {
        if (used[v] == 0) {
            used[v] = 1;
            perm[depth] = v;
            fk_rec(perm, used, depth + 1, n, best);
            used[v] = 0;
        }
    }
}

def fk_task(n, first, results) {
    var perm = new int[n];
    var used = new int[n];
    var best = new BoxInteger();
    best.v = 0;
    perm[0] = first;
    used[first] = 1;
    fk_rec(perm, used, 1, n, best);
    results[first] = best.v;
}

def main(n) {
    var results = new int[n];
    finish {
        for (var first = 0; first < n; first = first + 1) {
            var ff = first;
            async fk_task(n, ff, results);
        }
    }
    var best = 0;
    for (var first = 0; first < n; first = first + 1) {
        best = max(best, results[first]);
    }
    print("fannkuch(", n, ") =", best);
}
"""

MANDELBROT = """
// Shootout: Mandelbrot -- one task per scanline of the escape-time grid.
def mandel_row(counts, y, size, max_iter) {
    var ci = 2.0 * y / size - 1.0;
    for (var x = 0; x < size; x = x + 1) {
        var cr = 2.0 * x / size - 1.5;
        var zr = 0.0;
        var zi = 0.0;
        var it = 0;
        var live = true;
        while (live && it < max_iter) {
            var nzr = zr * zr - zi * zi + cr;
            var nzi = 2.0 * zr * zi + ci;
            zr = nzr;
            zi = nzi;
            if (zr * zr + zi * zi > 4.0) {
                live = false;
            }
            it = it + 1;
        }
        counts[y * size + x] = it;
    }
}

def main(size, max_iter) {
    var counts = new int[size * size];
    finish {
        for (var y = 0; y < size; y = y + 1) {
            var yy = y;
            async mandel_row(counts, yy, size, max_iter);
        }
    }
    var checksum = 0;
    for (var i = 0; i < size * size; i = i + 1) {
        checksum = (checksum + counts[i]) % 1000003;
    }
    print("mandelbrot checksum", checksum);
}
"""

#: name -> mini-HJ source of the original (race-free) benchmark.
SOURCES = {
    "fibonacci": FIBONACCI,
    "quicksort": QUICKSORT,
    "mergesort": MERGESORT,
    "spanningtree": SPANNING_TREE,
    "nqueens": NQUEENS,
    "series": SERIES,
    "sor": SOR,
    "crypt": CRYPT,
    "sparse": SPARSE,
    "lufact": LUFACT,
    "fannkuch": FANNKUCH,
    "mandelbrot": MANDELBROT,
}
