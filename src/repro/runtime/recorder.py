"""Execution-trace recording: the packed array encoding of a run.

The instrumented run's expensive part is per-access work: every monitored
access pays interpreter dispatch *and* builder/detector work.  Both the
replay fast path (PR 3) and the array-compiled detection core lower that
work onto flat int streams recorded here:

* :class:`TraceBuffer` — the **first-run producer**: an observer that
  does nothing but append the packed encoding as the engine executes.
  ``detect_races``'s array core runs the engine with a ``TraceBuffer``
  and then performs S-DPST maintenance and ESP-bags detection in batch
  over the arrays (:mod:`repro.races.arraycore`).
* :class:`TraceRecorder` — the **teeing producer**: records the same
  arrays while forwarding every event to an inner observer (the object
  ``DpstBuilder``), so the object-core detection run can record a trace
  without changing what the builder/detector see.

:mod:`repro.races.replay` is the second *consumer* of the same arrays:
it feeds a recorded trace (plus later-inserted ``finish`` brackets) back
through the identical array core, so iterations 1..k of the repair loop
need no interpreter.

Trace format (all parallel, index = control-event ordinal):

* ``kinds``    — int opcode per control event (``K_*`` below; a virtual
  ``K_START`` entry 0 anchors accesses before the first real event);
* ``payloads`` — the event argument: statement nid for ``K_AT``, the
  ``AsyncStmt``/``FinishStmt`` node for enters, a ``(kind, construct_nid,
  block_nid)`` tuple for ``K_ENTER_SCOPE``, ``None`` for exits;
* ``pends``    — for ``K_AT`` events, the engine's pending (accrued but
  unflushed) cost at that statement boundary.  Replay needs it to split
  cost correctly across finish brackets inserted at the boundary;
* ``starts``   — index into the access arrays where the *segment* (the
  run of accesses between this control event and the next) begins;
* ``segcosts`` — total cost units flushed within the segment.

Access arrays (index = access ordinal): ``acodes`` packs each monitored
access as ``addr_id << 1 | is_write`` with ``addr_id`` interning the
runtime address tuple into ``addr_table``; ``anodes`` holds the AST node
reference reported with the access (shared with the program, so it stays
valid across in-place finish insertion).
"""

from __future__ import annotations

from typing import Any, List

from .interpreter import ExecutionObserver

#: Control-event opcodes.
K_START = -1
K_AT = 0
K_ENTER_ASYNC = 1
K_EXIT_ASYNC = 2
K_ENTER_FINISH = 3
K_EXIT_FINISH = 4
K_ENTER_SCOPE = 5
K_EXIT_SCOPE = 6


class ExecutionTrace:
    """One recorded instrumented run, in replay-ready form."""

    __slots__ = ("kinds", "payloads", "pends", "starts", "segcosts",
                 "acodes", "anodes", "addr_table", "_stmt_nids",
                 "_finish_nids", "output", "ops", "value", "_replay_cache")

    def __init__(self, kinds, payloads, pends, starts, segcosts,
                 acodes, anodes, addr_table) -> None:
        self.kinds: List[int] = kinds
        self.payloads: List[Any] = payloads
        self.pends: List[int] = pends
        self.starts: List[int] = starts
        self.segcosts: List[int] = segcosts
        self.acodes: List[int] = acodes
        self.anodes: List[Any] = anodes
        self.addr_table: List[Any] = addr_table
        # The replay-validation nid sets scan every event; computed on
        # first use so the first-run detection path never pays for them.
        self._stmt_nids = None
        self._finish_nids = None
        self._replay_cache = None
        # Execution-result fields, filled in by the recording run's driver.
        self.output: List[str] = []
        self.ops = 0
        self.value: Any = None

    @property
    def stmt_nids(self):
        """Statement nids that executed (validates a replay target)."""
        nids = self._stmt_nids
        if nids is None:
            payloads = self.payloads
            nids = self._stmt_nids = {
                payloads[j] for j, k in enumerate(self.kinds) if k == K_AT}
        return nids

    @property
    def finish_nids(self):
        """Finish-statement nids whose enter events are *in* the trace;
        replay must not inject brackets for these (they were already
        present when the trace was recorded — e.g. synthetic finishes
        from an earlier repair round)."""
        nids = self._finish_nids
        if nids is None:
            payloads = self.payloads
            nids = self._finish_nids = {
                payloads[j].nid for j, k in enumerate(self.kinds)
                if k == K_ENTER_FINISH}
        return nids

    def replay_cache(self) -> dict:
        """Mutable scratch dict scoped to this trace's lifetime.

        Replay and the array core park per-trace derived artifacts here
        (duplicate-access mask, first-occurrence event map, validated
        program nid-sets) so repeated repair iterations over the same
        trace don't recompute them.  Keys are owned by the writers; the
        trace itself never reads the dict.
        """
        cache = self._replay_cache
        if cache is None:
            cache = self._replay_cache = {}
        return cache

    @property
    def access_count(self) -> int:
        return len(self.acodes)

    def decode_accesses(self):
        """Decode ``acodes`` back into the ``(addr, kind)`` sequence the
        observer saw, with ``kind`` one of ``"read"``/``"write"``.  The
        inverse of the packed encoding — tests use it to prove the
        round trip is exact."""
        table = self.addr_table
        return [(table[code >> 1], "write" if code & 1 else "read")
                for code in self.acodes]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ExecutionTrace(events={len(self.kinds)}, "
                f"accesses={len(self.acodes)}, "
                f"addrs={len(self.addr_table)})")


class TraceBuffer(ExecutionObserver):
    """Observer that *only* records the packed encoding of a run.

    This is the array core's first-run producer: per monitored access it
    does one interning lookup and two list appends — no S-DPST node, no
    shadow-memory entry, no detector call.  The batch consumer
    (:mod:`repro.races.arraycore`) does all of that afterwards, over the
    flat arrays.

    The observer hooks are installed as *instance attributes* — closures
    built in ``__init__`` that capture the arrays and their bound
    ``append`` methods directly.  Engines resolve observer methods once
    and call them millions of times; closing over the state up front
    removes every per-call ``self.`` lookup from the hot path.  The
    engine's pending-cost hook arrives (via :meth:`bind_pending_cost`)
    *after* engines have already bound ``at_statement``, so the closure
    reads it through a one-slot cell rather than being rebuilt.
    """

    def __init__(self) -> None:
        # The engine's accrued-cost probe; rebound in place so closures
        # built before bind_pending_cost still see the real hook.
        self._pending_cell = [lambda: 0]
        # Control-event arrays, opened with the virtual K_START segment
        # so accesses before the first real event (e.g. main's argument
        # binding) have a home.
        self._kinds: List[int] = [K_START]
        self._payloads: List[Any] = [None]
        self._pends: List[int] = [0]
        self._starts: List[int] = [0]
        self._segcosts: List[int] = [0]
        # Access arrays + address interning.
        self._acodes: List[int] = []
        self._anodes: List[Any] = []
        self._addr_ids = {}
        self._addr_table: List[Any] = []
        self._install_hooks()

    # ------------------------------------------------------------------

    def bind_pending_cost(self, pending) -> None:
        self._pending_cell[0] = pending

    def _install_hooks(self) -> None:
        """Build the per-event closures and install them as instance
        attributes (shadowing the interface methods)."""
        pending_cell = self._pending_cell
        kinds_append = self._kinds.append
        payloads_append = self._payloads.append
        pends_append = self._pends.append
        starts_append = self._starts.append
        segcosts = self._segcosts
        segcosts_append = segcosts.append
        acodes = self._acodes
        acodes_append = acodes.append
        anodes_append = self._anodes.append
        addr_ids = self._addr_ids
        addr_get = addr_ids.get
        addr_table = self._addr_table
        table_append = addr_table.append

        def event(kind, payload, pend=0):
            kinds_append(kind)
            payloads_append(payload)
            pends_append(pend)
            starts_append(len(acodes))
            segcosts_append(0)

        def at_statement(stmt_nid):
            kinds_append(K_AT)
            payloads_append(stmt_nid)
            pends_append(pending_cell[0]())
            starts_append(len(acodes))
            segcosts_append(0)

        def read(addr, node):
            aid = addr_get(addr)
            if aid is None:
                aid = len(addr_table)
                addr_ids[addr] = aid
                table_append(addr)
            acodes_append(aid << 1)
            anodes_append(node)

        def write(addr, node):
            aid = addr_get(addr)
            if aid is None:
                aid = len(addr_table)
                addr_ids[addr] = aid
                table_append(addr)
            acodes_append(aid << 1 | 1)
            anodes_append(node)

        def add_cost(units):
            segcosts[-1] += units

        def cost_read(units, addr, node):
            aid = addr_get(addr)
            if aid is None:
                aid = len(addr_table)
                addr_ids[addr] = aid
                table_append(addr)
            acodes_append(aid << 1)
            anodes_append(node)
            segcosts[-1] += units

        def cost_write(units, addr, node):
            aid = addr_get(addr)
            if aid is None:
                aid = len(addr_table)
                addr_ids[addr] = aid
                table_append(addr)
            acodes_append(aid << 1 | 1)
            anodes_append(node)
            segcosts[-1] += units

        self._event = event
        self.at_statement = at_statement
        self.enter_async = lambda stmt: event(K_ENTER_ASYNC, stmt)
        self.exit_async = lambda: event(K_EXIT_ASYNC, None)
        self.enter_finish = lambda stmt: event(K_ENTER_FINISH, stmt)
        self.exit_finish = lambda: event(K_EXIT_FINISH, None)
        self.enter_scope = lambda kind, construct_nid, block_nid: \
            event(K_ENTER_SCOPE, (kind, construct_nid, block_nid))
        self.exit_scope = lambda: event(K_EXIT_SCOPE, None)
        self.read = read
        self.write = write
        self.add_cost = add_cost
        self.cost_read = cost_read
        self.cost_write = cost_write

    # ------------------------------------------------------------------

    def trace(self) -> ExecutionTrace:
        """Freeze the recording into an :class:`ExecutionTrace`."""
        return ExecutionTrace(self._kinds, self._payloads, self._pends,
                              self._starts, self._segcosts,
                              self._acodes, self._anodes, self._addr_table)


class TraceRecorder(TraceBuffer):
    """Observer that tees every event to ``inner`` while recording it.

    Wrap the :class:`~repro.dpst.builder.DpstBuilder` of an object-core
    detection run; the builder (and its detector) see the exact stream
    they would without recording.  Like the buffer, the hooks are
    instance-attribute closures; each repeats the buffer's body with the
    bound forward appended rather than delegating — one call per access
    instead of two.
    """

    def __init__(self, inner: ExecutionObserver) -> None:
        self.inner = inner
        super().__init__()

    def bind_pending_cost(self, pending) -> None:
        self._pending_cell[0] = pending
        self.inner.bind_pending_cost(pending)

    def _install_hooks(self) -> None:
        super()._install_hooks()
        record_event = self._event
        pending_cell = self._pending_cell
        kinds_append = self._kinds.append
        payloads_append = self._payloads.append
        pends_append = self._pends.append
        starts_append = self._starts.append
        segcosts = self._segcosts
        segcosts_append = segcosts.append
        acodes = self._acodes
        acodes_append = acodes.append
        anodes_append = self._anodes.append
        addr_ids = self._addr_ids
        addr_get = addr_ids.get
        addr_table = self._addr_table
        table_append = addr_table.append
        inner = self.inner
        i_at = inner.at_statement
        i_enter_async = inner.enter_async
        i_exit_async = inner.exit_async
        i_enter_finish = inner.enter_finish
        i_exit_finish = inner.exit_finish
        i_enter_scope = inner.enter_scope
        i_exit_scope = inner.exit_scope
        i_read = inner.read
        i_write = inner.write
        i_add_cost = inner.add_cost
        i_cost_read = inner.cost_read
        i_cost_write = inner.cost_write

        def at_statement(stmt_nid):
            kinds_append(K_AT)
            payloads_append(stmt_nid)
            pends_append(pending_cell[0]())
            starts_append(len(acodes))
            segcosts_append(0)
            i_at(stmt_nid)

        def enter_async(stmt):
            record_event(K_ENTER_ASYNC, stmt)
            i_enter_async(stmt)

        def exit_async():
            record_event(K_EXIT_ASYNC, None)
            i_exit_async()

        def enter_finish(stmt):
            record_event(K_ENTER_FINISH, stmt)
            i_enter_finish(stmt)

        def exit_finish():
            record_event(K_EXIT_FINISH, None)
            i_exit_finish()

        def enter_scope(kind, construct_nid, block_nid):
            record_event(K_ENTER_SCOPE, (kind, construct_nid, block_nid))
            i_enter_scope(kind, construct_nid, block_nid)

        def exit_scope():
            record_event(K_EXIT_SCOPE, None)
            i_exit_scope()

        def read(addr, node):
            aid = addr_get(addr)
            if aid is None:
                aid = len(addr_table)
                addr_ids[addr] = aid
                table_append(addr)
            acodes_append(aid << 1)
            anodes_append(node)
            i_read(addr, node)

        def write(addr, node):
            aid = addr_get(addr)
            if aid is None:
                aid = len(addr_table)
                addr_ids[addr] = aid
                table_append(addr)
            acodes_append(aid << 1 | 1)
            anodes_append(node)
            i_write(addr, node)

        def add_cost(units):
            segcosts[-1] += units
            i_add_cost(units)

        def cost_read(units, addr, node):
            aid = addr_get(addr)
            if aid is None:
                aid = len(addr_table)
                addr_ids[addr] = aid
                table_append(addr)
            acodes_append(aid << 1)
            anodes_append(node)
            segcosts[-1] += units
            i_cost_read(units, addr, node)

        def cost_write(units, addr, node):
            aid = addr_get(addr)
            if aid is None:
                aid = len(addr_table)
                addr_ids[addr] = aid
                table_append(addr)
            acodes_append(aid << 1 | 1)
            anodes_append(node)
            segcosts[-1] += units
            i_cost_write(units, addr, node)

        self.at_statement = at_statement
        self.enter_async = enter_async
        self.exit_async = exit_async
        self.enter_finish = enter_finish
        self.exit_finish = exit_finish
        self.enter_scope = enter_scope
        self.exit_scope = exit_scope
        self.read = read
        self.write = write
        self.add_cost = add_cost
        self.cost_read = cost_read
        self.cost_write = cost_write
