"""Execution-trace recording for replay-based re-detection.

The repair loop's expensive step is the instrumented run: every monitored
access pays interpreter dispatch *and* builder/detector work.  But finish
insertion preserves serial-elision semantics — the depth-first execution
of the edited program performs the identical computation, so its observer
event stream is the iteration-0 stream plus the brackets of the new
``finish`` statements.  :class:`TraceRecorder` tees the iteration-0 stream
into a compact, segment-compiled :class:`ExecutionTrace`;
:mod:`repro.races.replay` then re-runs S-DPST construction and ESP-bags
detection for the *edited* program directly from the arrays, with no
interpreter in the loop.

Trace format (all parallel, index = control-event ordinal):

* ``kinds``    — int opcode per control event (``K_*`` below; a virtual
  ``K_START`` entry 0 anchors accesses before the first real event);
* ``payloads`` — the event argument: statement nid for ``K_AT``, the
  ``AsyncStmt``/``FinishStmt`` node for enters, a ``(kind, construct_nid,
  block_nid)`` tuple for ``K_ENTER_SCOPE``, ``None`` for exits;
* ``pends``    — for ``K_AT`` events, the engine's pending (accrued but
  unflushed) cost at that statement boundary.  Replay needs it to split
  cost correctly across finish brackets inserted at the boundary;
* ``starts``   — index into the access arrays where the *segment* (the
  run of accesses between this control event and the next) begins;
* ``segcosts`` — total cost units flushed within the segment.

Access arrays (index = access ordinal): ``acodes`` packs each monitored
access as ``addr_id << 1 | is_write`` with ``addr_id`` interning the
runtime address tuple into ``addr_table``; ``anodes`` holds the AST node
reference reported with the access (shared with the program, so it stays
valid across in-place finish insertion).
"""

from __future__ import annotations

from typing import Any, List, Optional

from ..lang import ast
from .interpreter import ExecutionObserver

#: Control-event opcodes.
K_START = -1
K_AT = 0
K_ENTER_ASYNC = 1
K_EXIT_ASYNC = 2
K_ENTER_FINISH = 3
K_EXIT_FINISH = 4
K_ENTER_SCOPE = 5
K_EXIT_SCOPE = 6


class ExecutionTrace:
    """One recorded instrumented run, in replay-ready form."""

    __slots__ = ("kinds", "payloads", "pends", "starts", "segcosts",
                 "acodes", "anodes", "addr_table", "stmt_nids",
                 "finish_nids", "output", "ops", "value")

    def __init__(self, kinds, payloads, pends, starts, segcosts,
                 acodes, anodes, addr_table) -> None:
        self.kinds: List[int] = kinds
        self.payloads: List[Any] = payloads
        self.pends: List[int] = pends
        self.starts: List[int] = starts
        self.segcosts: List[int] = segcosts
        self.acodes: List[int] = acodes
        self.anodes: List[Any] = anodes
        self.addr_table: List[Any] = addr_table
        #: statement nids that executed (used to validate a replay target).
        self.stmt_nids = {payloads[j] for j, k in enumerate(kinds)
                          if k == K_AT}
        #: finish-statement nids whose enter events are *in* the trace;
        #: replay must not inject brackets for these (they were already
        #: present when the trace was recorded — e.g. synthetic finishes
        #: from an earlier repair round).
        self.finish_nids = {payloads[j].nid for j, k in enumerate(kinds)
                            if k == K_ENTER_FINISH}
        # Execution-result fields, filled in by the recording run's driver.
        self.output: List[str] = []
        self.ops = 0
        self.value: Any = None

    @property
    def access_count(self) -> int:
        return len(self.acodes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ExecutionTrace(events={len(self.kinds)}, "
                f"accesses={len(self.acodes)}, "
                f"addrs={len(self.addr_table)})")


class TraceRecorder(ExecutionObserver):
    """Observer that tees every event to ``inner`` while recording it.

    Wrap the :class:`~repro.dpst.builder.DpstBuilder` of the iteration-0
    detection run; the builder (and its detector) see the exact stream
    they would without recording.
    """

    def __init__(self, inner: ExecutionObserver) -> None:
        self.inner = inner
        self._pending = lambda: 0
        # Control-event arrays, opened with the virtual K_START segment
        # so accesses before the first real event (e.g. main's argument
        # binding) have a home.
        self._kinds: List[int] = [K_START]
        self._payloads: List[Any] = [None]
        self._pends: List[int] = [0]
        self._starts: List[int] = [0]
        self._segcosts: List[int] = [0]
        # Access arrays + address interning.
        self._acodes: List[int] = []
        self._anodes: List[Any] = []
        self._addr_ids = {}
        self._addr_table: List[Any] = []
        # Bound forwards / locals for the per-access hot path.
        self._i_at = inner.at_statement
        self._i_enter_async = inner.enter_async
        self._i_exit_async = inner.exit_async
        self._i_enter_finish = inner.enter_finish
        self._i_exit_finish = inner.exit_finish
        self._i_enter_scope = inner.enter_scope
        self._i_exit_scope = inner.exit_scope
        self._i_read = inner.read
        self._i_write = inner.write
        self._i_add_cost = inner.add_cost
        self._i_cost_read = inner.cost_read
        self._i_cost_write = inner.cost_write

    # ------------------------------------------------------------------

    def bind_pending_cost(self, pending) -> None:
        self._pending = pending
        self.inner.bind_pending_cost(pending)

    def _event(self, kind: int, payload: Any, pend: int = 0) -> None:
        self._kinds.append(kind)
        self._payloads.append(payload)
        self._pends.append(pend)
        self._starts.append(len(self._acodes))
        self._segcosts.append(0)

    def _addr_id(self, addr) -> int:
        aid = self._addr_ids.get(addr)
        if aid is None:
            aid = len(self._addr_table)
            self._addr_ids[addr] = aid
            self._addr_table.append(addr)
        return aid

    # ------------------------------------------------------------------
    # Control events
    # ------------------------------------------------------------------

    def at_statement(self, stmt_nid: int) -> None:
        self._event(K_AT, stmt_nid, self._pending())
        self._i_at(stmt_nid)

    def enter_async(self, stmt: ast.AsyncStmt) -> None:
        self._event(K_ENTER_ASYNC, stmt)
        self._i_enter_async(stmt)

    def exit_async(self) -> None:
        self._event(K_EXIT_ASYNC, None)
        self._i_exit_async()

    def enter_finish(self, stmt: ast.FinishStmt) -> None:
        self._event(K_ENTER_FINISH, stmt)
        self._i_enter_finish(stmt)

    def exit_finish(self) -> None:
        self._event(K_EXIT_FINISH, None)
        self._i_exit_finish()

    def enter_scope(self, kind: str, construct_nid: int,
                    block_nid: int) -> None:
        self._event(K_ENTER_SCOPE, (kind, construct_nid, block_nid))
        self._i_enter_scope(kind, construct_nid, block_nid)

    def exit_scope(self) -> None:
        self._event(K_EXIT_SCOPE, None)
        self._i_exit_scope()

    # ------------------------------------------------------------------
    # Access / cost events (the hot path)
    # ------------------------------------------------------------------

    def read(self, addr, node: ast.Node) -> None:
        aid = self._addr_ids.get(addr)
        if aid is None:
            aid = len(self._addr_table)
            self._addr_ids[addr] = aid
            self._addr_table.append(addr)
        self._acodes.append(aid << 1)
        self._anodes.append(node)
        self._i_read(addr, node)

    def write(self, addr, node: ast.Node) -> None:
        aid = self._addr_ids.get(addr)
        if aid is None:
            aid = len(self._addr_table)
            self._addr_ids[addr] = aid
            self._addr_table.append(addr)
        self._acodes.append(aid << 1 | 1)
        self._anodes.append(node)
        self._i_write(addr, node)

    def add_cost(self, units: int) -> None:
        self._segcosts[-1] += units
        self._i_add_cost(units)

    def cost_read(self, units: int, addr, node: ast.Node) -> None:
        aid = self._addr_ids.get(addr)
        if aid is None:
            aid = len(self._addr_table)
            self._addr_ids[addr] = aid
            self._addr_table.append(addr)
        self._acodes.append(aid << 1)
        self._anodes.append(node)
        self._segcosts[-1] += units
        self._i_cost_read(units, addr, node)

    def cost_write(self, units: int, addr, node: ast.Node) -> None:
        aid = self._addr_ids.get(addr)
        if aid is None:
            aid = len(self._addr_table)
            self._addr_ids[addr] = aid
            self._addr_table.append(addr)
        self._acodes.append(aid << 1 | 1)
        self._anodes.append(node)
        self._segcosts[-1] += units
        self._i_cost_write(units, addr, node)

    # ------------------------------------------------------------------

    def trace(self) -> ExecutionTrace:
        """Freeze the recording into an :class:`ExecutionTrace`."""
        return ExecutionTrace(self._kinds, self._payloads, self._pends,
                              self._starts, self._segcosts,
                              self._acodes, self._anodes, self._addr_table)
