"""Lexical environments for the interpreter.

An :class:`Environment` maps names to :class:`~repro.runtime.values.Cell`
objects.  Child environments are created for blocks, loop iterations and
function frames; ``async`` bodies share the defining environment chain, so
tasks capture enclosing variables *by reference* — which is exactly what
lets the race detector observe task/parent conflicts on locals.
"""

from __future__ import annotations

from typing import Any, Optional

from ..errors import RuntimeFault
from .values import Cell


class Environment:
    """A single lexical scope level."""

    __slots__ = ("parent", "bindings")

    def __init__(self, parent: Optional["Environment"] = None) -> None:
        self.parent = parent
        self.bindings: dict = {}

    def child(self) -> "Environment":
        """Create a nested scope."""
        return Environment(self)

    def define(self, name: str, value: Any = None) -> Cell:
        """Bind ``name`` to a fresh cell in this scope.

        Shadowing an outer binding is allowed; redefining within the same
        scope is a validation-level error and simply rebinds here.
        """
        cell = Cell(name, value)
        self.bindings[name] = cell
        return cell

    def lookup(self, name: str) -> Cell:
        """Find the cell for ``name``, walking outwards.

        Raises :class:`RuntimeFault` if unbound (validation should have
        rejected the program already).
        """
        env: Optional[Environment] = self
        while env is not None:
            cell = env.bindings.get(name)
            if cell is not None:
                return cell
            env = env.parent
        raise RuntimeFault(f"undefined variable {name!r}")

    def is_bound(self, name: str) -> bool:
        env: Optional[Environment] = self
        while env is not None:
            if name in env.bindings:
                return True
            env = env.parent
        return False
