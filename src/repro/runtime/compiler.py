"""Closure-compiled execution engine for mini-HJ.

A one-time compilation pass lowers every AST statement and expression
into a Python closure (the classic "compile the tree to nested lambdas"
technique for tree interpreters).  Dispatch that the tree interpreter in
:mod:`repro.runtime.interpreter` repeats on *every* node visit — the
``isinstance`` chain, function/builtin resolution, operator-string
comparison, environment/observer method lookups — happens exactly once,
at compile time; execution is then a graph of direct closure calls.

The engine's contract is **observable equivalence** with the tree
interpreter: for any program and input it must produce

* the same output lines and final value,
* the same ``ops`` count (and the same :class:`StepLimitExceeded`
  behaviour at the same op), and
* a bit-identical :class:`~repro.runtime.interpreter.ExecutionObserver`
  event sequence — every ``enter_*``/``exit_*``/``at_statement``/
  ``read``/``write``/``add_cost`` call, in order, with the same
  arguments.

That invariance is what lets the S-DPST builder, both ESP-bags
detectors, the cost model and the Figure-16 schedules run unchanged on
top of either engine (``tests/test_compiled_engine.py`` asserts it over
the whole benchmark and student corpora).

Compilation is cheap — O(AST size), a few hundred microseconds for the
Table-1 programs — so the engine simply recompiles per run; the repair
loop mutates the AST between iterations anyway.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence

from ..errors import RuntimeFault
from ..lang import ast
from .builtins import BUILTINS, BuiltinContext
from .env import Environment
from .interpreter import (
    _CHECK_INTERVAL,
    ExecutionObserver,
    ExecutionResult,
    StepLimitExceeded,
    _BreakSignal,
    _ContinueSignal,
    _ReturnSignal,
    binary_op,
    to_display,
    truth_value,
    unary_op,
    values_equal,
)
from .values import ArrayValue, Cell, StructValue, default_fill

#: A compiled expression: environment in, value out.
ExprFn = Callable[[Environment], Any]
#: A compiled statement: runs for effect (may raise control-flow signals).
StmtFn = Callable[[Environment], None]


class CompiledEngine:
    """Compiles a program to closures and executes it once.

    Mutable run state lives in the 3-slot list ``self._st`` —
    ``[ops, pending_cost, next_limit_check]`` — which every closure
    captures directly, so the hot tick/flush paths are plain list
    arithmetic instead of attribute access and method calls.
    """

    def __init__(self, program: ast.Program,
                 observer: Optional[ExecutionObserver] = None,
                 ctx: Optional[BuiltinContext] = None,
                 globals_env: Optional[Environment] = None,
                 max_ops: int = 200_000_000) -> None:
        self.program = program
        self.observer = observer if observer is not None else ExecutionObserver()
        self.ctx = ctx if ctx is not None else BuiltinContext()
        self.globals_env = globals_env if globals_env is not None \
            else Environment()
        self.max_ops = max_ops
        # [ops, pending_cost, next_check]; see Interpreter._tick for the
        # clamped-boundary budget check this mirrors.
        self._st = [0, 0, min(_CHECK_INTERVAL, max_ops + 1)]
        # Per-function compiled callables.  A cell (1-element list) per
        # function breaks compile-time recursion: call sites capture the
        # cell and do ``cell[0](args, node)`` at run time.
        self._caller_cells: Dict[str, list] = {}
        # Bound observer methods — resolved once, captured by closures.
        obs = self.observer
        self._at_statement = obs.at_statement
        self._read = obs.read
        self._write = obs.write
        self._add_cost = obs.add_cost
        # Fused flush+access events (see ExecutionObserver.cost_read):
        # one observer call per monitored access instead of two.
        self._cost_read = obs.cost_read
        self._cost_write = obs.cost_write
        self._enter_scope = obs.enter_scope
        self._exit_scope = obs.exit_scope
        self._enter_async = obs.enter_async
        self._exit_async = obs.exit_async
        self._enter_finish = obs.enter_finish
        self._exit_finish = obs.exit_finish

    @property
    def ops(self) -> int:
        return self._st[0]

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------

    def run(self, args: Sequence[Any] = ()) -> ExecutionResult:
        """Compile and execute ``main(*args)`` (see Interpreter.run)."""
        program = self.program
        main = program.functions.get("main")
        if main is None:
            raise RuntimeFault("program has no 'main' function")
        if len(main.params) != len(args):
            raise RuntimeFault(
                f"main expects {len(main.params)} argument(s), got {len(args)}")
        st = self._st
        add_cost = self._add_cost
        globals_env = self.globals_env
        self.observer.bind_pending_cost(lambda: st[1])
        for gdecl in program.globals:
            self._at_statement(gdecl.nid)
            value = (self._compile_expr(gdecl.init)(globals_env)
                     if gdecl.init is not None else None)
            cell = Cell(gdecl.name, value)
            globals_env.bindings[gdecl.name] = cell
            pending = st[1]
            st[1] = 0
            self._cost_write(pending, cell.addr, gdecl)
        caller = self._function_caller(main)
        value = caller[0]([self._convert_arg(a) for a in args], main)
        if st[1]:
            add_cost(st[1])
            st[1] = 0
        return ExecutionResult(self.ctx.output, st[0], value)

    def _convert_arg(self, arg: Any) -> Any:
        if isinstance(arg, list):
            array = ArrayValue(len(arg))
            array.items = [self._convert_arg(v) for v in arg]
            return array
        return arg

    def _check_budget(self) -> None:
        """Slow path of the tick: raise or advance the check boundary."""
        st = self._st
        if st[0] > self.max_ops:
            raise StepLimitExceeded(
                f"execution exceeded {self.max_ops} operations")
        st[2] = min(st[0] + _CHECK_INTERVAL, self.max_ops + 1)

    # ------------------------------------------------------------------
    # Functions
    # ------------------------------------------------------------------

    def _function_caller(self, func: ast.FuncDecl) -> list:
        """The 1-element cell holding ``(args, call_node) -> value``."""
        cell = self._caller_cells.get(func.name)
        if cell is not None:
            return cell
        cell = [None]
        self._caller_cells[func.name] = cell
        body_fn = self._compile_block_stmts(func.body)
        param_names = [p.name for p in func.params]
        globals_env = self.globals_env
        st = self._st
        add_cost = self._add_cost
        cost_write = self._cost_write
        enter_scope = self._enter_scope
        exit_scope = self._exit_scope
        func_nid = func.nid
        body_nid = func.body.nid

        def call(call_args: List[Any], call_node: ast.Node) -> Any:
            frame = Environment(globals_env)
            bindings = frame.bindings
            for name, value in zip(param_names, call_args):
                param_cell = Cell(name, value)
                bindings[name] = param_cell
                pending = st[1]
                st[1] = 0
                cost_write(pending, param_cell.addr, call_node)
            if st[1]:
                add_cost(st[1])
                st[1] = 0
            enter_scope("call", func_nid, body_nid)
            try:
                body_fn(frame)
                return None
            except _ReturnSignal as signal:
                return signal.value
            finally:
                if st[1]:
                    add_cost(st[1])
                    st[1] = 0
                exit_scope()

        cell[0] = call
        return cell

    # ------------------------------------------------------------------
    # Blocks and scopes
    # ------------------------------------------------------------------

    def _compile_block_stmts(self, block: ast.Block) -> StmtFn:
        """The statements of ``block``, each behind its at_statement event
        (no scope event; callers emit those)."""
        pairs = [(stmt.nid, self._compile_stmt(stmt)) for stmt in block.stmts]
        at_statement = self._at_statement

        def run(env: Environment) -> None:
            for nid, fn in pairs:
                at_statement(nid)
                fn(env)

        return run

    @staticmethod
    def _declares_vars(block: ast.Block) -> bool:
        """Whether the block binds names directly into its environment."""
        return any(type(stmt) is ast.VarDecl for stmt in block.stmts)

    def _compile_scoped_block(self, kind: str, construct_nid: int,
                              block: ast.Block) -> StmtFn:
        """``block`` in a child environment inside a scope event.

        Environments are invisible to the observer, so when the block
        declares no variables of its own the child environment is
        elided: the statements run directly in the parent environment
        (nothing could bind or shadow there), keeping lookup chains
        short and skipping an allocation per loop iteration.
        """
        stmts_fn = self._compile_block_stmts(block)
        st = self._st
        add_cost = self._add_cost
        enter_scope = self._enter_scope
        exit_scope = self._exit_scope
        block_nid = block.nid
        needs_env = self._declares_vars(block)

        def run(env: Environment) -> None:
            if st[1]:
                add_cost(st[1])
                st[1] = 0
            enter_scope(kind, construct_nid, block_nid)
            try:
                stmts_fn(Environment(env) if needs_env else env)
            finally:
                if st[1]:
                    add_cost(st[1])
                    st[1] = 0
                exit_scope()

        return run

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------

    def _compile_stmt(self, stmt: ast.Stmt) -> StmtFn:
        compiler = _STMT_COMPILERS.get(type(stmt))
        if compiler is None:
            def run(env: Environment) -> None:
                raise RuntimeFault(f"unknown statement {type(stmt).__name__}",
                                   stmt.line, stmt.col)
            return run
        return compiler(self, stmt)

    def _c_var_decl(self, stmt: ast.VarDecl) -> StmtFn:
        init_fn = (self._compile_expr(stmt.init)
                   if stmt.init is not None else None)
        st = self._st
        check = self._check_budget
        cost_write = self._cost_write
        name = stmt.name

        def run(env: Environment) -> None:
            st[0] += 1
            st[1] += 1
            if st[0] >= st[2]:
                check()
            value = init_fn(env) if init_fn is not None else None
            cell = Cell(name, value)
            env.bindings[name] = cell
            pending = st[1]
            st[1] = 0
            cost_write(pending, cell.addr, stmt)

        return run

    def _c_expr_stmt(self, stmt: ast.ExprStmt) -> StmtFn:
        expr_fn = self._compile_expr(stmt.expr)
        st = self._st
        check = self._check_budget

        def run(env: Environment) -> None:
            st[0] += 1
            st[1] += 1
            if st[0] >= st[2]:
                check()
            expr_fn(env)

        return run

    def _c_if(self, stmt: ast.If) -> StmtFn:
        cond_fn = self._compile_expr(stmt.cond)
        then_fn = self._compile_scoped_block("if", stmt.nid, stmt.then_block)
        else_fn = (self._compile_scoped_block("else", stmt.nid,
                                              stmt.else_block)
                   if stmt.else_block is not None else None)
        st = self._st
        check = self._check_budget
        cond_node = stmt.cond

        def run(env: Environment) -> None:
            st[0] += 1
            st[1] += 1
            if st[0] >= st[2]:
                check()
            cond = cond_fn(env)
            if cond is True:
                then_fn(env)
            elif cond is False:
                if else_fn is not None:
                    else_fn(env)
            else:
                truth_value(cond, cond_node)

        return run

    def _c_while(self, stmt: ast.While) -> StmtFn:
        cond_fn = self._compile_expr(stmt.cond)
        body_fn = self._compile_scoped_block("loop", stmt.nid, stmt.body)
        st = self._st
        check = self._check_budget
        cond_node = stmt.cond

        def run(env: Environment) -> None:
            st[0] += 1
            st[1] += 1
            if st[0] >= st[2]:
                check()
            while True:
                cond = cond_fn(env)
                if cond is not True:
                    if cond is False:
                        break
                    truth_value(cond, cond_node)
                try:
                    body_fn(env)
                except _BreakSignal:
                    break
                except _ContinueSignal:
                    continue

        return run

    def _c_for(self, stmt: ast.For) -> StmtFn:
        init_fn = (self._compile_stmt(stmt.init)
                   if stmt.init is not None else None)
        cond_fn = (self._compile_expr(stmt.cond)
                   if stmt.cond is not None else None)
        update_fn = (self._compile_stmt(stmt.update)
                     if stmt.update is not None else None)
        body_fn = self._compile_scoped_block("loop", stmt.nid, stmt.body)
        st = self._st
        check = self._check_budget
        cond_node = stmt.cond
        # The header environment only matters when the init binds a loop
        # variable; a plain assignment (or no init) mutates existing
        # cells, so the loop can run directly in the parent environment.
        needs_env = type(stmt.init) is ast.VarDecl

        def run(env: Environment) -> None:
            st[0] += 1
            st[1] += 1
            if st[0] >= st[2]:
                check()
            for_env = Environment(env) if needs_env else env
            if init_fn is not None:
                init_fn(for_env)
            while True:
                if cond_fn is not None:
                    cond = cond_fn(for_env)
                    if cond is not True:
                        if cond is False:
                            break
                        truth_value(cond, cond_node)
                try:
                    body_fn(for_env)
                except _BreakSignal:
                    break
                except _ContinueSignal:
                    pass
                if update_fn is not None:
                    update_fn(for_env)

        return run

    def _c_return(self, stmt: ast.Return) -> StmtFn:
        value_fn = (self._compile_expr(stmt.value)
                    if stmt.value is not None else None)
        st = self._st
        check = self._check_budget

        def run(env: Environment) -> None:
            st[0] += 1
            st[1] += 1
            if st[0] >= st[2]:
                check()
            raise _ReturnSignal(value_fn(env) if value_fn is not None
                                else None)

        return run

    def _c_break(self, stmt: ast.Break) -> StmtFn:
        st = self._st
        check = self._check_budget

        def run(env: Environment) -> None:
            st[0] += 1
            st[1] += 1
            if st[0] >= st[2]:
                check()
            raise _BreakSignal()

        return run

    def _c_continue(self, stmt: ast.Continue) -> StmtFn:
        st = self._st
        check = self._check_budget

        def run(env: Environment) -> None:
            st[0] += 1
            st[1] += 1
            if st[0] >= st[2]:
                check()
            raise _ContinueSignal()

        return run

    def _c_async(self, stmt: ast.AsyncStmt) -> StmtFn:
        # async/finish/block statements carry no tick of their own (see
        # the tree interpreter's _exec_stmt).
        body_fn = self._compile_block_stmts(stmt.body)
        st = self._st
        add_cost = self._add_cost
        enter_async = self._enter_async
        exit_async = self._exit_async
        needs_env = self._declares_vars(stmt.body)

        def run(env: Environment) -> None:
            if st[1]:
                add_cost(st[1])
                st[1] = 0
            enter_async(stmt)
            try:
                body_fn(Environment(env) if needs_env else env)
            finally:
                if st[1]:
                    add_cost(st[1])
                    st[1] = 0
                exit_async()

        return run

    def _c_finish(self, stmt: ast.FinishStmt) -> StmtFn:
        body_fn = self._compile_block_stmts(stmt.body)
        st = self._st
        add_cost = self._add_cost
        enter_finish = self._enter_finish
        exit_finish = self._exit_finish
        needs_env = self._declares_vars(stmt.body)

        def run(env: Environment) -> None:
            if st[1]:
                add_cost(st[1])
                st[1] = 0
            enter_finish(stmt)
            try:
                body_fn(Environment(env) if needs_env else env)
            finally:
                if st[1]:
                    add_cost(st[1])
                    st[1] = 0
                exit_finish()

        return run

    def _c_block(self, stmt: ast.Block) -> StmtFn:
        return self._compile_scoped_block("block", stmt.nid, stmt)

    # -- assignment -----------------------------------------------------

    def _c_assign(self, stmt: ast.Assign) -> StmtFn:
        target = stmt.target
        if isinstance(target, ast.VarRef):
            return self._c_assign_var(stmt, target)
        if isinstance(target, ast.Index):
            return self._c_assign_index(stmt, target)
        if isinstance(target, ast.FieldAccess):
            return self._c_assign_field(stmt, target)
        st = self._st
        check = self._check_budget

        def run(env: Environment) -> None:
            st[0] += 1
            st[1] += 1
            if st[0] >= st[2]:
                check()
            raise RuntimeFault("invalid assignment target",
                               stmt.line, stmt.col)

        return run

    def _c_assign_var(self, stmt: ast.Assign, target: ast.VarRef) -> StmtFn:
        value_fn = self._compile_expr(stmt.value)
        apply_fn = (self._compile_binop_apply(stmt.op[0], stmt)
                    if stmt.op != "=" else None)
        st = self._st
        check = self._check_budget
        cost_read = self._cost_read
        cost_write = self._cost_write
        name = target.name
        hops = -1  # stable resolution depth; see _c_var_ref

        def run(env: Environment) -> None:
            nonlocal hops
            st[0] += 1
            st[1] += 1
            if st[0] >= st[2]:
                check()
            h = hops
            if h == 0:
                cell = env.bindings.get(name)
            elif h > 0:
                scope = env
                while h:
                    scope = scope.parent
                    h -= 1
                cell = scope.bindings.get(name)
            else:
                cell = None
            if cell is None:
                scope = env
                h = 0
                while scope is not None:
                    cell = scope.bindings.get(name)
                    if cell is not None:
                        hops = h
                        break
                    scope = scope.parent
                    h += 1
                else:
                    raise RuntimeFault(f"undefined variable {name!r}")
            if apply_fn is None:
                value = value_fn(env)
            else:
                pending = st[1]
                st[1] = 0
                cost_read(pending, cell.addr, target)
                old = cell.value
                value = apply_fn(old, value_fn(env))
            cell.value = value
            pending = st[1]
            st[1] = 0
            cost_write(pending, cell.addr, stmt)

        return run

    def _c_assign_index(self, stmt: ast.Assign, target: ast.Index) -> StmtFn:
        base_fn = self._compile_expr(target.base)
        index_fn = self._compile_expr(target.index)
        value_fn = self._compile_expr(stmt.value)
        apply_fn = (self._compile_binop_apply(stmt.op[0], stmt)
                    if stmt.op != "=" else None)
        st = self._st
        check = self._check_budget
        cost_read = self._cost_read
        cost_write = self._cost_write
        line, col = target.line, target.col

        def run(env: Environment) -> None:
            st[0] += 1
            st[1] += 1
            if st[0] >= st[2]:
                check()
            array = base_fn(env)
            if type(array) is not ArrayValue:
                raise RuntimeFault(f"indexing a non-array value "
                                   f"({to_display(array)})", line, col)
            index = index_fn(env)
            if type(index) is not int:
                raise RuntimeFault("array index must be an integer",
                                   line, col)
            items = array.items
            if not 0 <= index < len(items):
                raise RuntimeFault(
                    f"array index {index} out of bounds for length "
                    f"{len(items)}", line, col)
            addr = ("elem", array.array_id, index)
            if apply_fn is None:
                value = value_fn(env)
            else:
                pending = st[1]
                st[1] = 0
                cost_read(pending, addr, target)
                old = items[index]
                value = apply_fn(old, value_fn(env))
            items[index] = value
            pending = st[1]
            st[1] = 0
            cost_write(pending, addr, stmt)

        return run

    def _c_assign_field(self, stmt: ast.Assign,
                        target: ast.FieldAccess) -> StmtFn:
        base_fn = self._compile_expr(target.base)
        value_fn = self._compile_expr(stmt.value)
        apply_fn = (self._compile_binop_apply(stmt.op[0], stmt)
                    if stmt.op != "=" else None)
        st = self._st
        check = self._check_budget
        cost_read = self._cost_read
        cost_write = self._cost_write
        field = target.field
        line, col = target.line, target.col

        def run(env: Environment) -> None:
            st[0] += 1
            st[1] += 1
            if st[0] >= st[2]:
                check()
            struct = base_fn(env)
            if type(struct) is not StructValue:
                raise RuntimeFault(
                    f"field access on non-struct value "
                    f"({to_display(struct)})", line, col)
            fields = struct.fields
            if field not in fields:
                raise RuntimeFault(
                    f"struct {struct.struct_name} has no field {field!r}",
                    line, col)
            addr = ("field", struct.struct_id, field)
            if apply_fn is None:
                value = value_fn(env)
            else:
                pending = st[1]
                st[1] = 0
                cost_read(pending, addr, target)
                old = fields[field]
                value = apply_fn(old, value_fn(env))
            fields[field] = value
            pending = st[1]
            st[1] = 0
            cost_write(pending, addr, stmt)

        return run

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------

    def _compile_expr(self, expr: ast.Expr) -> ExprFn:
        compiler = _EXPR_COMPILERS.get(type(expr))
        if compiler is None:
            def run(env: Environment) -> Any:
                raise RuntimeFault(
                    f"unknown expression {type(expr).__name__}",
                    expr.line, expr.col)
            return run
        return compiler(self, expr)

    def _c_literal(self, expr) -> ExprFn:
        value = expr.value
        st = self._st
        check = self._check_budget

        def run(env: Environment) -> Any:
            st[0] += 1
            st[1] += 1
            if st[0] >= st[2]:
                check()
            return value

        return run

    def _c_null(self, expr: ast.NullLit) -> ExprFn:
        st = self._st
        check = self._check_budget

        def run(env: Environment) -> Any:
            st[0] += 1
            st[1] += 1
            if st[0] >= st[2]:
                check()
            return None

        return run

    def _c_var_ref(self, expr: ast.VarRef) -> ExprFn:
        st = self._st
        check = self._check_budget
        cost_read = self._cost_read
        name = expr.name
        # Depth at which this reference last resolved.  A closure is tied
        # to one AST position, where the environment-chain shape and the
        # set of bindings present are the same on every execution, so the
        # depth is stable; a miss (None) falls back to the full walk.
        hops = -1

        def run(env: Environment) -> Any:
            nonlocal hops
            st[0] += 1
            st[1] += 1
            if st[0] >= st[2]:
                check()
            h = hops
            if h == 0:
                cell = env.bindings.get(name)
            elif h > 0:
                scope = env
                while h:
                    scope = scope.parent
                    h -= 1
                cell = scope.bindings.get(name)
            else:
                cell = None
            if cell is None:
                scope = env
                h = 0
                while scope is not None:
                    cell = scope.bindings.get(name)
                    if cell is not None:
                        hops = h
                        break
                    scope = scope.parent
                    h += 1
                else:
                    raise RuntimeFault(f"undefined variable {name!r}")
            pending = st[1]
            st[1] = 0
            cost_read(pending, cell.addr, expr)
            return cell.value

        return run

    def _c_unary(self, expr: ast.Unary) -> ExprFn:
        operand_fn = self._compile_expr(expr.operand)
        st = self._st
        check = self._check_budget
        op = expr.op

        if op == "-":
            def run(env: Environment) -> Any:
                st[0] += 1
                st[1] += 1
                if st[0] >= st[2]:
                    check()
                value = operand_fn(env)
                kind = type(value)
                if kind is int or kind is float:
                    return -value
                return unary_op("-", value, expr)
        elif op == "!":
            def run(env: Environment) -> Any:
                st[0] += 1
                st[1] += 1
                if st[0] >= st[2]:
                    check()
                value = operand_fn(env)
                if value is True:
                    return False
                if value is False:
                    return True
                return unary_op("!", value, expr)
        else:
            def run(env: Environment) -> Any:
                st[0] += 1
                st[1] += 1
                if st[0] >= st[2]:
                    check()
                return unary_op(op, operand_fn(env), expr)

        return run

    def _c_binary(self, expr: ast.Binary) -> ExprFn:
        op = expr.op
        if op == "&&" or op == "||":
            return self._c_short_circuit(expr)
        left_fn = self._compile_expr(expr.left)
        right_fn = self._compile_expr(expr.right)
        st = self._st
        check = self._check_budget
        fast = _FAST_BINOPS.get(op)

        if fast is not None:
            def run(env: Environment) -> Any:
                st[0] += 1
                st[1] += 1
                if st[0] >= st[2]:
                    check()
                left = left_fn(env)
                right = right_fn(env)
                kl = type(left)
                if ((kl is int or kl is float)
                        and (type(right) is int or type(right) is float)):
                    return fast(left, right)
                return binary_op(op, left, right, expr)
        elif op == "/":
            def run(env: Environment) -> Any:
                st[0] += 1
                st[1] += 1
                if st[0] >= st[2]:
                    check()
                left = left_fn(env)
                right = right_fn(env)
                kl, kr = type(left), type(right)
                if kl is int and kr is int:
                    if right == 0:
                        raise RuntimeFault("integer division by zero",
                                           expr.line, expr.col)
                    quotient = abs(left) // abs(right)
                    return quotient if (left >= 0) == (right >= 0) \
                        else -quotient
                if ((kl is int or kl is float)
                        and (kr is int or kr is float)):
                    if right == 0:
                        raise RuntimeFault("division by zero",
                                           expr.line, expr.col)
                    return left / right
                return binary_op("/", left, right, expr)
        elif op == "%":
            def run(env: Environment) -> Any:
                st[0] += 1
                st[1] += 1
                if st[0] >= st[2]:
                    check()
                left = left_fn(env)
                right = right_fn(env)
                if type(left) is int and type(right) is int:
                    if right == 0:
                        raise RuntimeFault("modulo by zero",
                                           expr.line, expr.col)
                    remainder = abs(left) % abs(right)
                    return remainder if left >= 0 else -remainder
                return binary_op("%", left, right, expr)
        elif op == "==" or op == "!=":
            want = op == "=="

            def run(env: Environment) -> Any:
                st[0] += 1
                st[1] += 1
                if st[0] >= st[2]:
                    check()
                left = left_fn(env)
                right = right_fn(env)
                if type(left) is int and type(right) is int:
                    return (left == right) is want
                return values_equal(left, right) is want
        else:
            def run(env: Environment) -> Any:
                st[0] += 1
                st[1] += 1
                if st[0] >= st[2]:
                    check()
                left = left_fn(env)
                right = right_fn(env)
                return binary_op(op, left, right, expr)

        return run

    def _c_short_circuit(self, expr: ast.Binary) -> ExprFn:
        left_fn = self._compile_expr(expr.left)
        right_fn = self._compile_expr(expr.right)
        st = self._st
        check = self._check_budget
        left_node, right_node = expr.left, expr.right

        if expr.op == "&&":
            def run(env: Environment) -> Any:
                st[0] += 1
                st[1] += 1
                if st[0] >= st[2]:
                    check()
                left = left_fn(env)
                if left is False:
                    return False
                if left is not True:
                    truth_value(left, left_node)
                right = right_fn(env)
                if right is True or right is False:
                    return right
                return truth_value(right, right_node)
        else:
            def run(env: Environment) -> Any:
                st[0] += 1
                st[1] += 1
                if st[0] >= st[2]:
                    check()
                left = left_fn(env)
                if left is True:
                    return True
                if left is not False:
                    truth_value(left, left_node)
                right = right_fn(env)
                if right is True or right is False:
                    return right
                return truth_value(right, right_node)

        return run

    def _compile_binop_apply(self, op: str, node: ast.Node):
        """``(old, operand) -> value`` for a compound assignment's op."""
        fast = _FAST_BINOPS.get(op)
        if fast is not None:
            def apply(left: Any, right: Any) -> Any:
                kl = type(left)
                if ((kl is int or kl is float)
                        and (type(right) is int or type(right) is float)):
                    return fast(left, right)
                return binary_op(op, left, right, node)
            return apply

        def apply(left: Any, right: Any) -> Any:
            return binary_op(op, left, right, node)

        return apply

    def _c_index(self, expr: ast.Index) -> ExprFn:
        base_fn = self._compile_expr(expr.base)
        index_fn = self._compile_expr(expr.index)
        st = self._st
        check = self._check_budget
        cost_read = self._cost_read
        line, col = expr.line, expr.col

        def run(env: Environment) -> Any:
            st[0] += 1
            st[1] += 1
            if st[0] >= st[2]:
                check()
            array = base_fn(env)
            if type(array) is not ArrayValue:
                raise RuntimeFault(f"indexing a non-array value "
                                   f"({to_display(array)})", line, col)
            index = index_fn(env)
            if type(index) is not int:
                raise RuntimeFault("array index must be an integer",
                                   line, col)
            items = array.items
            if not 0 <= index < len(items):
                raise RuntimeFault(
                    f"array index {index} out of bounds for length "
                    f"{len(items)}", line, col)
            pending = st[1]
            st[1] = 0
            cost_read(pending, ("elem", array.array_id, index), expr)
            return items[index]

        return run

    def _c_field_access(self, expr: ast.FieldAccess) -> ExprFn:
        base_fn = self._compile_expr(expr.base)
        st = self._st
        check = self._check_budget
        cost_read = self._cost_read
        field = expr.field
        line, col = expr.line, expr.col

        def run(env: Environment) -> Any:
            st[0] += 1
            st[1] += 1
            if st[0] >= st[2]:
                check()
            struct = base_fn(env)
            if type(struct) is not StructValue:
                raise RuntimeFault(
                    f"field access on non-struct value "
                    f"({to_display(struct)})", line, col)
            fields = struct.fields
            if field not in fields:
                raise RuntimeFault(
                    f"struct {struct.struct_name} has no field {field!r}",
                    line, col)
            pending = st[1]
            st[1] = 0
            cost_read(pending, ("field", struct.struct_id, field), expr)
            return fields[field]

        return run

    def _c_call(self, expr: ast.Call) -> ExprFn:
        st = self._st
        check = self._check_budget
        arg_fns = [self._compile_expr(a) for a in expr.args]
        func = self.program.functions.get(expr.name)
        if func is not None:
            if len(func.params) != len(expr.args):
                message = (f"call to {expr.name!r} with {len(expr.args)} "
                           f"args, expected {len(func.params)}")

                def run(env: Environment) -> Any:
                    st[0] += 1
                    st[1] += 1
                    if st[0] >= st[2]:
                        check()
                    raise RuntimeFault(message, expr.line, expr.col)

                return run
            caller = self._function_caller(func)

            def run(env: Environment) -> Any:
                st[0] += 1
                st[1] += 1
                if st[0] >= st[2]:
                    check()
                return caller[0]([fn(env) for fn in arg_fns], expr)

            return run
        builtin = BUILTINS.get(expr.name)
        if builtin is None:
            def run(env: Environment) -> Any:
                st[0] += 1
                st[1] += 1
                if st[0] >= st[2]:
                    check()
                raise RuntimeFault(
                    f"call to unknown function {expr.name!r}",
                    expr.line, expr.col)

            return run
        arity, impl = builtin
        if arity is not None and arity != len(expr.args):
            message = (f"builtin {expr.name!r} expects {arity} args, "
                       f"got {len(expr.args)}")

            def run(env: Environment) -> Any:
                st[0] += 1
                st[1] += 1
                if st[0] >= st[2]:
                    check()
                raise RuntimeFault(message, expr.line, expr.col)

            return run
        ctx = self.ctx
        line, col = expr.line, expr.col

        def run(env: Environment) -> Any:
            st[0] += 1
            st[1] += 1
            if st[0] >= st[2]:
                check()
            call_args = [fn(env) for fn in arg_fns]
            try:
                return impl(ctx, call_args)
            except RuntimeFault as fault:
                if fault.line is None:
                    raise RuntimeFault(fault.bare_message, line, col)
                raise

        return run

    def _c_new_array(self, expr: ast.NewArray) -> ExprFn:
        dim_fns = [self._compile_expr(d) for d in expr.dims]
        fill = default_fill(expr.elem_type)
        last_dim = len(dim_fns) - 1
        st = self._st
        check = self._check_budget
        line, col = expr.line, expr.col

        def alloc(env: Environment, dim: int) -> ArrayValue:
            length = dim_fns[dim](env)
            if type(length) is not int:
                raise RuntimeFault("array length must be an integer",
                                   line, col)
            if length < 0:
                raise RuntimeFault(f"negative array length {length}",
                                   line, col)
            if dim == last_dim:
                return ArrayValue(length, fill)
            array = ArrayValue(length, None)
            # Re-evaluating inner dims per row matches Java's semantics
            # for rectangular `new T[n][m]` with side-effect-free dims.
            array.items = [alloc(env, dim + 1) for _ in range(length)]
            return array

        def run(env: Environment) -> Any:
            st[0] += 1
            st[1] += 1
            if st[0] >= st[2]:
                check()
            return alloc(env, 0)

        return run

    def _c_new_struct(self, expr: ast.NewStruct) -> ExprFn:
        st = self._st
        check = self._check_budget
        decl = self.program.structs.get(expr.struct_name)
        if decl is None:
            def run(env: Environment) -> Any:
                st[0] += 1
                st[1] += 1
                if st[0] >= st[2]:
                    check()
                raise RuntimeFault(f"unknown struct {expr.struct_name!r}",
                                   expr.line, expr.col)

            return run
        struct_name = decl.name
        field_names = decl.fields

        def run(env: Environment) -> Any:
            st[0] += 1
            st[1] += 1
            if st[0] >= st[2]:
                check()
            return StructValue(struct_name, field_names)

        return run


#: Strict numeric fast paths; non-(int|float) operand pairs fall back to
#: the shared binary_op (which owns string "+", errors, etc.).
_FAST_BINOPS = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}

_STMT_COMPILERS = {
    ast.Assign: CompiledEngine._c_assign,
    ast.VarDecl: CompiledEngine._c_var_decl,
    ast.ExprStmt: CompiledEngine._c_expr_stmt,
    ast.If: CompiledEngine._c_if,
    ast.While: CompiledEngine._c_while,
    ast.For: CompiledEngine._c_for,
    ast.Return: CompiledEngine._c_return,
    ast.Break: CompiledEngine._c_break,
    ast.Continue: CompiledEngine._c_continue,
    ast.AsyncStmt: CompiledEngine._c_async,
    ast.FinishStmt: CompiledEngine._c_finish,
    ast.Block: CompiledEngine._c_block,
}

_EXPR_COMPILERS = {
    ast.IntLit: CompiledEngine._c_literal,
    ast.FloatLit: CompiledEngine._c_literal,
    ast.BoolLit: CompiledEngine._c_literal,
    ast.StringLit: CompiledEngine._c_literal,
    ast.NullLit: CompiledEngine._c_null,
    ast.VarRef: CompiledEngine._c_var_ref,
    ast.Unary: CompiledEngine._c_unary,
    ast.Binary: CompiledEngine._c_binary,
    ast.Index: CompiledEngine._c_index,
    ast.FieldAccess: CompiledEngine._c_field_access,
    ast.Call: CompiledEngine._c_call,
    ast.NewArray: CompiledEngine._c_new_array,
    ast.NewStruct: CompiledEngine._c_new_struct,
}
