"""Runtime values and shared-memory addressing for the interpreter.

Every mutable storage location in a program execution has a unique,
hashable *address*:

* ``("cell", cell_id)`` — a variable binding (local, parameter or global);
* ``("elem", array_id, index)`` — one array element;
* ``("field", struct_id, name)`` — one struct field.

The race detectors key their shadow memory by these addresses, which gives
element-granularity monitoring exactly like the byte-level instrumentation
of the paper's PIR pass.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, List, Tuple

Address = Tuple[Any, ...]

_ids = itertools.count(1)


def _fresh_id() -> int:
    return next(_ids)


def reset_ids() -> None:
    """Restart address allocation at 1, as in a freshly started process.

    Addresses appear verbatim in race reports (``("elem", array_id,
    index)``), so two executions of one program only produce identical
    reports if they allocate from the same starting id.  Batch runners
    call this before each job so a warm worker process reports exactly
    what a fresh single-shot process would.  Never call this while an
    execution is in flight: live objects keep their ids and new
    allocations would collide with them.
    """
    global _ids
    _ids = itertools.count(1)


class Cell:
    """A single variable binding with a unique address."""

    __slots__ = ("value", "addr", "name")

    def __init__(self, name: str, value: Any = None) -> None:
        self.name = name
        self.value = value
        self.addr: Address = ("cell", _fresh_id())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Cell({self.name}={self.value!r})"


class ArrayValue:
    """A fixed-length mutable array.

    ``fill`` is the element written by allocation; element addresses are
    stable for the array's lifetime.
    """

    __slots__ = ("items", "array_id")

    def __init__(self, length: int, fill: Any = 0) -> None:
        self.items: List[Any] = [fill] * length
        self.array_id = _fresh_id()

    def __len__(self) -> int:
        return len(self.items)

    def element_addr(self, index: int) -> Address:
        return ("elem", self.array_id, index)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        preview = ", ".join(repr(v) for v in self.items[:8])
        suffix = ", ..." if len(self.items) > 8 else ""
        return f"Array#{self.array_id}[{preview}{suffix}]"


class StructValue:
    """An instance of a ``struct`` declaration; fields start as null."""

    __slots__ = ("struct_name", "fields", "struct_id")

    def __init__(self, struct_name: str, field_names: List[str]) -> None:
        self.struct_name = struct_name
        self.fields: Dict[str, Any] = {name: None for name in field_names}
        self.struct_id = _fresh_id()

    def field_addr(self, name: str) -> Address:
        return ("field", self.struct_id, name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.struct_name}#{self.struct_id}({self.fields})"


#: Fill values by written element type in ``new <type>[n]``.
DEFAULT_FILL = {"int": 0, "double": 0.0, "boolean": False}


def default_fill(elem_type: str) -> Any:
    """Allocation fill value for an array of the given written type."""
    return DEFAULT_FILL.get(elem_type, None)


def to_display(value: Any) -> str:
    """Render a runtime value the way ``print`` shows it."""
    if value is None:
        return "null"
    if value is True:
        return "true"
    if value is False:
        return "false"
    if isinstance(value, float):
        return f"{value:.6g}"
    if isinstance(value, ArrayValue):
        return "[" + ", ".join(to_display(v) for v in value.items) + "]"
    if isinstance(value, StructValue):
        inner = ", ".join(f"{k}={to_display(v)}"
                          for k, v in value.fields.items())
        return f"{value.struct_name}({inner})"
    return str(value)
