"""Execution substrate: values, environments, builtins and the sequential
depth-first interpreter with instrumentation hooks."""

from .builtins import BUILTIN_NAMES, BUILTINS, BuiltinContext, DeterministicRng
from .env import Environment
from .interpreter import (
    ENGINES,
    ExecutionObserver,
    ExecutionResult,
    Interpreter,
    get_default_engine,
    run_program,
    set_default_engine,
)
from .recorder import ExecutionTrace, TraceRecorder
from .schedules import (
    DeferredScheduleInterpreter,
    DeterminismReport,
    check_determinism,
    run_deferred,
)
from .values import Address, ArrayValue, Cell, StructValue, to_display

__all__ = [
    "BUILTIN_NAMES",
    "BUILTINS",
    "BuiltinContext",
    "DeterministicRng",
    "Environment",
    "ENGINES",
    "ExecutionObserver",
    "ExecutionResult",
    "Interpreter",
    "get_default_engine",
    "run_program",
    "set_default_engine",
    "ExecutionTrace",
    "TraceRecorder",
    "Address",
    "ArrayValue",
    "Cell",
    "StructValue",
    "to_display",
    "DeferredScheduleInterpreter",
    "DeterminismReport",
    "check_determinism",
    "run_deferred",
]
