"""Alternative legal schedules: empirical determinism checking.

The paper's footnote 1: *"Since the repaired program is data-race-free,
it has the same semantics for all memory models."*  The analyses all run
on the canonical depth-first schedule; this module executes a program
under *other* legal serial schedules so tests can observe the claim:

* a **deferred** schedule runs an ``async`` body not at its spawn point
  but later — tasks queue up in the innermost enclosing finish and run,
  in seeded-random order, when that finish must complete (tasks with no
  enclosing finish run at program exit);
* every such schedule linearizes the program's happens-before relation,
  so a data-race-free program must print exactly the same output under
  all of them, while a racy program usually betrays itself with
  schedule-dependent output.

:func:`check_determinism` runs a program under depth-first plus N random
deferred schedules and reports whether outputs agree — an end-to-end,
semantics-level validation of a repair, independent of the detector.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence

from ..errors import RuntimeFault
from ..lang import ast
from .builtins import DeterministicRng
from .env import Environment
from .interpreter import ExecutionResult, Interpreter


class _PendingTask:
    __slots__ = ("body", "env")

    def __init__(self, body: ast.Block, env: Environment) -> None:
        self.body = body
        self.env = env


class DeferredScheduleInterpreter(Interpreter):
    """Runs asyncs deferred, in a seeded-random legal order.

    Each active finish owns a queue of pending tasks; spawning appends to
    the innermost queue (or the implicit program-level queue).  When a
    finish block's synchronous part ends, its queue drains in random
    order — tasks spawned *by* those tasks join the same queue, matching
    the transitive-join semantics.  The program-level queue drains after
    ``main`` returns.

    Only the task *order* changes; each task still runs to completion
    once started (a serial schedule), so every execution this produces is
    a legal linearization of the async/finish happens-before.
    """

    def __init__(self, program: ast.Program, schedule_seed: int = 1,
                 seed: int = 20140609,
                 max_ops: int = 200_000_000) -> None:
        # This subclass reorders execution by overriding _exec_stmt, so it
        # must run on the tree engine regardless of the process default.
        super().__init__(program, observer=None, seed=seed, max_ops=max_ops,
                         engine="tree")
        self._schedule_rng = DeterministicRng(schedule_seed ^ 0xD1CE)
        self._queues: List[List[_PendingTask]] = [[]]

    # -- overridden statement handling ---------------------------------

    def _exec_stmt(self, stmt: ast.Stmt, env: Environment) -> None:
        if isinstance(stmt, ast.AsyncStmt):
            self._queues[-1].append(_PendingTask(stmt.body, env.child()))
            return
        if isinstance(stmt, ast.FinishStmt):
            self._queues.append([])
            try:
                self._exec_block_stmts(stmt.body, env.child())
            finally:
                queue = self._queues.pop()
                # Re-attach: tasks spawned while draining still belong to
                # this finish, so drain with the queue re-installed.
                self._queues.append(queue)
                self._drain(queue)
                self._queues.pop()
            return
        super()._exec_stmt(stmt, env)

    def _drain(self, queue: List[_PendingTask]) -> None:
        while queue:
            index = self._schedule_rng.next_int(len(queue))
            task = queue.pop(index)
            self._exec_block_stmts(task.body, task.env)

    def run(self, args: Sequence[Any] = ()) -> ExecutionResult:
        result = super().run(args)
        # Tasks never joined by any finish run at program exit, in
        # random order (they must run *somewhere* in a serial schedule).
        self._drain(self._queues[0])
        return ExecutionResult(self.ctx.output, self.ops, result.value)


def run_deferred(program: ast.Program, args: Sequence[Any] = (),
                 schedule_seed: int = 1, seed: int = 20140609,
                 max_ops: int = 200_000_000) -> ExecutionResult:
    """Execute under one random deferred schedule."""
    interp = DeferredScheduleInterpreter(program, schedule_seed, seed,
                                         max_ops)
    return interp.run(args)


class DeterminismReport:
    """Outcome of :func:`check_determinism`."""

    def __init__(self, reference: List[str],
                 disagreements: List[int]) -> None:
        #: output of the canonical depth-first schedule
        self.reference = reference
        #: schedule seeds whose output differed from the reference
        self.disagreements = disagreements

    @property
    def deterministic(self) -> bool:
        return not self.disagreements

    def summary(self) -> str:
        if self.deterministic:
            return "output identical under every schedule tried"
        return (f"{len(self.disagreements)} schedule(s) produced "
                f"different output (seeds {self.disagreements})")


def check_determinism(program: ast.Program, args: Sequence[Any] = (),
                      schedules: int = 8, seed: int = 20140609,
                      max_ops: int = 200_000_000) -> DeterminismReport:
    """Compare the depth-first output against N random legal schedules.

    A data-race-free program must come back ``deterministic``; a racy one
    usually does not (absence of disagreement is of course not a proof of
    race freedom — that is what the detector is for).

    Outputs are compared as *multisets* of lines: the relative order of
    prints from unordered tasks is legitimately schedule-dependent even
    in a race-free program, whereas racing programs change the printed
    *values*.
    """
    reference = Interpreter(program, seed=seed, max_ops=max_ops) \
        .run(args).output
    reference_key = sorted(reference)
    disagreements = []
    for schedule_seed in range(1, schedules + 1):
        try:
            output = run_deferred(program, args, schedule_seed, seed,
                                  max_ops).output
        except RuntimeFault:
            # Crashing under one legal schedule but not another is the
            # starkest form of schedule-dependence (e.g. an assertion on
            # data a racing task has not produced yet).
            disagreements.append(schedule_seed)
            continue
        if sorted(output) != reference_key:
            disagreements.append(schedule_seed)
    return DeterminismReport(reference, disagreements)
