"""Builtin functions available to mini-HJ programs.

All builtins are deterministic: the pseudo-random generator is a seeded
64-bit LCG owned by the interpreter, so a program executed twice on the
same input touches exactly the same memory locations.  That determinism is
load-bearing — the repair loop re-executes the program after each edit and
relies on seeing the same races.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, List

from ..errors import RuntimeFault
from .values import ArrayValue, to_display

_LCG_MULT = 6364136223846793005
_LCG_INC = 1442695040888963407
_MASK64 = (1 << 64) - 1


class DeterministicRng:
    """A 64-bit linear congruential generator (Knuth's MMIX constants)."""

    def __init__(self, seed: int = 20140609) -> None:
        self.state = (seed ^ 0x9E3779B97F4A7C15) & _MASK64

    def next_u64(self) -> int:
        self.state = (self.state * _LCG_MULT + _LCG_INC) & _MASK64
        return self.state

    def next_int(self, bound: int) -> int:
        """Uniform-ish integer in ``[0, bound)``; bound must be positive."""
        if bound <= 0:
            raise RuntimeFault(f"rand_int bound must be positive, got {bound}")
        return (self.next_u64() >> 16) % bound

    def next_double(self) -> float:
        """Uniform float in ``[0, 1)``."""
        return (self.next_u64() >> 11) / float(1 << 53)


class BuiltinContext:
    """State builtins may touch: the output sink and the PRNG."""

    def __init__(self, seed: int = 20140609) -> None:
        self.output: List[str] = []
        self.rng = DeterministicRng(seed)


def _want_number(value: Any, who: str) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise RuntimeFault(f"{who} expects a number, got {to_display(value)}")
    return value


def _want_int(value: Any, who: str) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise RuntimeFault(f"{who} expects an integer, got {to_display(value)}")
    return value


def _b_print(ctx: BuiltinContext, args: List[Any]) -> None:
    ctx.output.append(" ".join(to_display(a) for a in args))
    return None


def _b_len(ctx: BuiltinContext, args: List[Any]) -> int:
    (value,) = args
    if isinstance(value, ArrayValue):
        return len(value)
    if isinstance(value, str):
        return len(value)
    raise RuntimeFault(f"len expects an array or string, got {to_display(value)}")


def _unary_math(name: str, func: Callable[[float], float]):
    def impl(ctx: BuiltinContext, args: List[Any]) -> float:
        (value,) = args
        return func(_want_number(value, name))
    return impl


def _b_pow(ctx: BuiltinContext, args: List[Any]) -> float:
    base, exp = args
    return math.pow(_want_number(base, "pow"), _want_number(exp, "pow"))


def _b_abs(ctx: BuiltinContext, args: List[Any]) -> Any:
    (value,) = args
    return abs(_want_number(value, "abs"))


def _b_min(ctx: BuiltinContext, args: List[Any]) -> Any:
    a, b = args
    return min(_want_number(a, "min"), _want_number(b, "min"))


def _b_max(ctx: BuiltinContext, args: List[Any]) -> Any:
    a, b = args
    return max(_want_number(a, "max"), _want_number(b, "max"))


def _b_to_int(ctx: BuiltinContext, args: List[Any]) -> int:
    (value,) = args
    if isinstance(value, str):
        return int(value)
    return int(_want_number(value, "to_int"))


def _b_to_double(ctx: BuiltinContext, args: List[Any]) -> float:
    (value,) = args
    return float(_want_number(value, "to_double"))


def _b_rand_int(ctx: BuiltinContext, args: List[Any]) -> int:
    (bound,) = args
    return ctx.rng.next_int(_want_int(bound, "rand_int"))


def _b_rand_double(ctx: BuiltinContext, args: List[Any]) -> float:
    return ctx.rng.next_double()


def _b_seed_rand(ctx: BuiltinContext, args: List[Any]) -> None:
    (seed,) = args
    ctx.rng = DeterministicRng(_want_int(seed, "seed_rand"))
    return None


def _b_assert_true(ctx: BuiltinContext, args: List[Any]) -> None:
    cond = args[0]
    message = args[1] if len(args) > 1 else "assertion failed"
    if cond is not True:
        raise RuntimeFault(f"assert_true failed: {to_display(message)}")
    return None


def _b_str(ctx: BuiltinContext, args: List[Any]) -> str:
    (value,) = args
    return to_display(value)


#: name -> (arity or None for variadic, implementation)
BUILTINS: Dict[str, Any] = {
    "print": (None, _b_print),
    "len": (1, _b_len),
    "sqrt": (1, _unary_math("sqrt", math.sqrt)),
    "sin": (1, _unary_math("sin", math.sin)),
    "cos": (1, _unary_math("cos", math.cos)),
    "exp": (1, _unary_math("exp", math.exp)),
    "log": (1, _unary_math("log", math.log)),
    "floor": (1, _unary_math("floor", lambda x: float(math.floor(x)))),
    "pow": (2, _b_pow),
    "abs": (1, _b_abs),
    "min": (2, _b_min),
    "max": (2, _b_max),
    "to_int": (1, _b_to_int),
    "to_double": (1, _b_to_double),
    "rand_int": (1, _b_rand_int),
    "rand_double": (0, _b_rand_double),
    "seed_rand": (1, _b_seed_rand),
    "assert_true": (None, _b_assert_true),
    "str": (1, _b_str),
}

#: The names exposed to :func:`repro.lang.validate.validate`.
BUILTIN_NAMES = tuple(BUILTINS)
