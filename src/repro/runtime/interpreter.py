"""Sequential depth-first interpreter for mini-HJ with instrumentation.

The paper's analyses (Section 3) all run over *one sequential depth-first
execution* of the parallel program: an ``async`` body executes immediately
and completely before the statement after it, exactly like the serial
elision, while an :class:`ExecutionObserver` is told where tasks, finishes
and scopes begin and end and which memory addresses each step reads and
writes.  The S-DPST builder and the ESP-bags detectors plug in through
that observer interface.

Cost model: every expression node evaluated and every statement executed
contributes one time unit to the current step.  These unit costs drive the
critical-path-length and scheduling analyses (the stand-in for the paper's
measured step execution times).

Two execution engines share this contract:

* ``"tree"`` — the direct AST-walking interpreter in this module, one
  ``isinstance`` dispatch chain per node visit; and
* ``"compiled"`` (the default) — the closure-compilation engine in
  :mod:`repro.runtime.compiler`, which lowers each AST node to a Python
  closure once and replays the *exact* same observer event stream and op
  counts several times faster.

Select an engine per run with ``Interpreter(..., engine=...)``, process
wide with :func:`set_default_engine`, or via the ``REPRO_ENGINE``
environment variable.
"""

from __future__ import annotations

import os
import sys
from typing import Any, List, Optional, Sequence

from ..errors import RuntimeFault, StepLimitExceeded
from ..lang import ast
from .builtins import BUILTINS, BuiltinContext
from .env import Environment
from .values import ArrayValue, StructValue, default_fill, to_display

#: Engines selectable for :class:`Interpreter` / :func:`run_program`.
ENGINES = ("tree", "compiled")

_default_engine = "compiled"


def set_default_engine(name: str) -> None:
    """Set the engine used when ``Interpreter`` is built without one."""
    if name not in ENGINES:
        raise ValueError(f"unknown engine {name!r}; choose from {ENGINES}")
    global _default_engine
    _default_engine = name


def get_default_engine() -> str:
    """The process-wide default engine (``REPRO_ENGINE`` overrides)."""
    env = os.environ.get("REPRO_ENGINE")
    if env:
        if env not in ENGINES:
            raise ValueError(
                f"REPRO_ENGINE={env!r} is not one of {ENGINES}")
        return env
    return _default_engine


class ExecutionObserver:
    """Hooks invoked by the interpreter during execution.

    The default implementations do nothing, so partial observers can
    subclass and override only what they need.
    """

    def enter_async(self, stmt: ast.AsyncStmt) -> None:
        """A task is spawned; its body is about to run depth-first."""

    def exit_async(self) -> None:
        """The current task's body finished."""

    def enter_finish(self, stmt: ast.FinishStmt) -> None:
        """A finish block is entered."""

    def exit_finish(self) -> None:
        """The current finish block ended (all its tasks joined)."""

    def enter_scope(self, kind: str, construct_nid: int, block_nid: int) -> None:
        """A lexical scope instance begins.

        ``kind`` is one of ``call``, ``if``, ``else``, ``loop``, ``block``;
        ``construct_nid`` is the AST construct that opened the scope and
        ``block_nid`` the AST block the scope's statements live in.
        """

    def exit_scope(self) -> None:
        """The innermost scope instance ends."""

    def at_statement(self, stmt_nid: int) -> None:
        """A statement at the top level of the current scope begins."""

    def bind_pending_cost(self, pending) -> None:
        """Called once at run start with a zero-argument callable returning
        the engine's *pending* (accrued but not yet flushed) cost.

        Cost ticks are flushed lazily — at accesses and scope boundaries —
        so the event stream alone does not say how many units have accrued
        at an arbitrary statement boundary.  Observers that need that
        number (the trace recorder records it at every ``at_statement`` so
        replay can re-attribute cost across later-inserted ``finish``
        boundaries) keep the callable; the default discards it.
        """

    def read(self, addr, node: ast.Node) -> None:
        """The current step reads the memory location ``addr``."""

    def write(self, addr, node: ast.Node) -> None:
        """The current step writes the memory location ``addr``."""

    def add_cost(self, units: int) -> None:
        """``units`` time units of computation happened in the current step."""

    # Fused access events.  The compiled engine reports every monitored
    # access through these; the defaults decompose them into the exact
    # ``add_cost``/``read``/``write`` sequence the tree engine emits, so
    # observers that only implement the primitive hooks see an identical
    # event stream.  Observers on the per-access hot path (the S-DPST
    # builder) override them to do the combined work in one call.

    def cost_read(self, units: int, addr, node: ast.Node) -> None:
        """``units`` of cost followed by a read of ``addr``."""
        if units:
            self.add_cost(units)
        self.read(addr, node)

    def cost_write(self, units: int, addr, node: ast.Node) -> None:
        """``units`` of cost followed by a write of ``addr``."""
        if units:
            self.add_cost(units)
        self.write(addr, node)


class ExecutionResult:
    """What a completed run produced."""

    def __init__(self, output: List[str], ops: int, value: Any) -> None:
        self.output = output
        self.ops = ops
        self.value = value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ExecutionResult(ops={self.ops}, lines={len(self.output)})"


class _ReturnSignal(Exception):
    def __init__(self, value: Any) -> None:
        self.value = value


class _BreakSignal(Exception):
    pass


class _ContinueSignal(Exception):
    pass


_CHECK_INTERVAL = 4096


# ----------------------------------------------------------------------
# Operator semantics (shared by the tree and compiled engines)
# ----------------------------------------------------------------------

def both_ints(left: Any, right: Any) -> bool:
    return (isinstance(left, int) and not isinstance(left, bool)
            and isinstance(right, int) and not isinstance(right, bool))


def both_numbers(left: Any, right: Any) -> bool:
    return (isinstance(left, (int, float)) and not isinstance(left, bool)
            and isinstance(right, (int, float))
            and not isinstance(right, bool))


def values_equal(left: Any, right: Any) -> bool:
    if isinstance(left, (ArrayValue, StructValue)) or isinstance(
            right, (ArrayValue, StructValue)):
        return left is right
    if isinstance(left, bool) or isinstance(right, bool):
        return left is right
    return left == right


def truth_value(value: Any, node: ast.Node) -> bool:
    if isinstance(value, bool):
        return value
    raise RuntimeFault(f"condition is not a boolean "
                       f"({to_display(value)})", node.line, node.col)


def unary_op(op: str, value: Any, node: ast.Node) -> Any:
    if op == "-":
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise RuntimeFault("unary '-' needs a number",
                               node.line, node.col)
        return -value
    if op == "!":
        if not isinstance(value, bool):
            raise RuntimeFault("'!' needs a boolean", node.line, node.col)
        return not value
    if op == "~":
        if isinstance(value, bool) or not isinstance(value, int):
            raise RuntimeFault("'~' needs an integer", node.line, node.col)
        return ~value
    raise RuntimeFault(f"unknown unary operator {op!r}",
                       node.line, node.col)


def binary_op(op: str, left: Any, right: Any, node: ast.Node) -> Any:
    if op == "+" and (isinstance(left, str) or isinstance(right, str)):
        return to_display(left) + to_display(right)
    if op in ("==", "!="):
        same = values_equal(left, right)
        return same if op == "==" else not same
    if op in ("&", "|", "^", "<<", ">>"):
        if not both_ints(left, right):
            raise RuntimeFault(f"{op!r} needs integer operands",
                               node.line, node.col)
        if op == "&":
            return left & right
        if op == "|":
            return left | right
        if op == "^":
            return left ^ right
        if op == "<<":
            return left << right
        return left >> right
    if not both_numbers(left, right):
        raise RuntimeFault(
            f"operator {op!r} needs numeric operands, got "
            f"{to_display(left)} and {to_display(right)}",
            node.line, node.col)
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "/":
        if isinstance(left, int) and isinstance(right, int):
            if right == 0:
                raise RuntimeFault("integer division by zero",
                                   node.line, node.col)
            # Java-style truncation toward zero.
            quotient = abs(left) // abs(right)
            return quotient if (left >= 0) == (right >= 0) else -quotient
        if right == 0:
            raise RuntimeFault("division by zero", node.line, node.col)
        return left / right
    if op == "%":
        if right == 0:
            raise RuntimeFault("modulo by zero", node.line, node.col)
        if isinstance(left, int) and isinstance(right, int):
            # Java-style remainder: sign follows the dividend.
            remainder = abs(left) % abs(right)
            return remainder if left >= 0 else -remainder
        return left - right * int(left / right)
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == ">":
        return left > right
    if op == ">=":
        return left >= right
    raise RuntimeFault(f"unknown operator {op!r}", node.line, node.col)


class Interpreter:
    """Executes a mini-HJ program sequentially, reporting to an observer."""

    #: recursion headroom the deep depth-first walks need
    _RECURSION_LIMIT = 100_000

    def __init__(self, program: ast.Program,
                 observer: Optional[ExecutionObserver] = None,
                 seed: int = 20140609,
                 max_ops: int = 200_000_000,
                 engine: Optional[str] = None) -> None:
        self.program = program
        self.observer = observer if observer is not None else ExecutionObserver()
        # Observer hooks resolved once (the compiled engine does the same
        # in its own __init__): the tree engine's per-access path calls
        # these millions of times, and the fused cost_read/cost_write
        # entry points replace every flush-then-access pair with one call.
        obs = self.observer
        self._obs_at = obs.at_statement
        self._obs_add_cost = obs.add_cost
        self._obs_cost_read = obs.cost_read
        self._obs_cost_write = obs.cost_write
        self._obs_enter_scope = obs.enter_scope
        self._obs_exit_scope = obs.exit_scope
        self.ctx = BuiltinContext(seed)
        self.max_ops = max_ops
        self.ops = 0
        self._pending_cost = 0
        # Next op count at which the step budget is re-checked: every
        # _CHECK_INTERVAL ops, clamped so the budget itself is never
        # overshot by more than one op.
        self._next_check = min(_CHECK_INTERVAL, max_ops + 1)
        self.globals_env = Environment()
        if engine is None:
            engine = get_default_engine()
        elif engine not in ENGINES:
            raise ValueError(
                f"unknown engine {engine!r}; choose from {ENGINES}")
        self.engine = engine

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------

    def run(self, args: Sequence[Any] = ()) -> ExecutionResult:
        """Execute ``main(*args)`` and return the result.

        ``args`` may contain Python ints/floats/bools/strings, lists (which
        become fresh arrays) and None.
        """
        saved_limit = sys.getrecursionlimit()
        raised_limit = saved_limit < self._RECURSION_LIMIT
        if raised_limit:
            sys.setrecursionlimit(self._RECURSION_LIMIT)
        try:
            return self._run(args)
        finally:
            if raised_limit:
                sys.setrecursionlimit(saved_limit)

    def _run(self, args: Sequence[Any]) -> ExecutionResult:
        main = self.program.functions.get("main")
        if main is None:
            raise RuntimeFault("program has no 'main' function")
        if len(main.params) != len(args):
            raise RuntimeFault(
                f"main expects {len(main.params)} argument(s), got {len(args)}")
        if self.engine == "compiled":
            from .compiler import CompiledEngine

            compiled = CompiledEngine(self.program, self.observer, self.ctx,
                                      self.globals_env, self.max_ops)
            try:
                return compiled.run(args)
            finally:
                self.ops = compiled.ops
        self.observer.bind_pending_cost(lambda: self._pending_cost)
        for gdecl in self.program.globals:
            self._obs_at(gdecl.nid)
            value = (self._eval(gdecl.init, self.globals_env)
                     if gdecl.init is not None else None)
            cell = self.globals_env.define(gdecl.name, value)
            pending = self._pending_cost
            self._pending_cost = 0
            self._obs_cost_write(pending, cell.addr, gdecl)
        value = self._call_function(main, [self._convert_arg(a) for a in args],
                                    main)
        self._flush_cost()
        return ExecutionResult(self.ctx.output, self.ops, value)

    def _convert_arg(self, arg: Any) -> Any:
        if isinstance(arg, list):
            array = ArrayValue(len(arg))
            array.items = [self._convert_arg(v) for v in arg]
            return array
        return arg

    # ------------------------------------------------------------------
    # Cost accounting
    # ------------------------------------------------------------------

    def _tick(self) -> None:
        self.ops += 1
        self._pending_cost += 1
        if self.ops >= self._next_check:
            self._check_budget()

    def _check_budget(self) -> None:
        if self.ops > self.max_ops:
            raise StepLimitExceeded(
                f"execution exceeded {self.max_ops} operations")
        self._next_check = min(self.ops + _CHECK_INTERVAL,
                               self.max_ops + 1)

    def _flush_cost(self) -> None:
        if self._pending_cost:
            self._obs_add_cost(self._pending_cost)
            self._pending_cost = 0

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------

    def _exec_block_stmts(self, block: ast.Block, env: Environment) -> None:
        """Run the statements of ``block`` in ``env`` (no new scope event)."""
        obs_at = self._obs_at
        exec_stmt = self._exec_stmt
        for stmt in block.stmts:
            obs_at(stmt.nid)
            exec_stmt(stmt, env)

    def _exec_scoped_block(self, kind: str, construct_nid: int,
                           block: ast.Block, env: Environment) -> None:
        """Run ``block`` in a child environment inside a new scope event."""
        self._flush_cost()
        self._obs_enter_scope(kind, construct_nid, block.nid)
        try:
            self._exec_block_stmts(block, env.child())
        finally:
            self._flush_cost()
            self._obs_exit_scope()

    def _exec_stmt(self, stmt: ast.Stmt, env: Environment) -> None:
        # async/finish/block statements carry no cost of their own: their
        # bodies are accounted separately, and charging a spawn tick here
        # would materialize spurious steps between adjacent asyncs (the
        # paper's Figure 9 has none).
        if not isinstance(stmt, (ast.AsyncStmt, ast.FinishStmt, ast.Block)):
            # _tick() inlined: this and _eval are the engine's two
            # hottest call sites.
            self.ops += 1
            self._pending_cost += 1
            if self.ops >= self._next_check:
                self._check_budget()
        if isinstance(stmt, ast.Assign):
            self._exec_assign(stmt, env)
        elif isinstance(stmt, ast.VarDecl):
            value = (self._eval(stmt.init, env)
                     if stmt.init is not None else None)
            cell = env.define(stmt.name, value)
            pending = self._pending_cost
            self._pending_cost = 0
            self._obs_cost_write(pending, cell.addr, stmt)
        elif isinstance(stmt, ast.ExprStmt):
            self._eval(stmt.expr, env)
        elif isinstance(stmt, ast.If):
            cond = self._truth(self._eval(stmt.cond, env), stmt.cond)
            if cond:
                self._exec_scoped_block("if", stmt.nid, stmt.then_block, env)
            elif stmt.else_block is not None:
                self._exec_scoped_block("else", stmt.nid, stmt.else_block, env)
        elif isinstance(stmt, ast.While):
            while self._truth(self._eval(stmt.cond, env), stmt.cond):
                try:
                    self._exec_scoped_block("loop", stmt.nid, stmt.body, env)
                except _BreakSignal:
                    break
                except _ContinueSignal:
                    continue
        elif isinstance(stmt, ast.For):
            for_env = env.child()
            if stmt.init is not None:
                self._exec_stmt(stmt.init, for_env)
            while (stmt.cond is None
                   or self._truth(self._eval(stmt.cond, for_env), stmt.cond)):
                try:
                    self._exec_scoped_block("loop", stmt.nid, stmt.body, for_env)
                except _BreakSignal:
                    break
                except _ContinueSignal:
                    pass
                if stmt.update is not None:
                    self._exec_stmt(stmt.update, for_env)
        elif isinstance(stmt, ast.Return):
            value = (self._eval(stmt.value, env)
                     if stmt.value is not None else None)
            raise _ReturnSignal(value)
        elif isinstance(stmt, ast.Break):
            raise _BreakSignal()
        elif isinstance(stmt, ast.Continue):
            raise _ContinueSignal()
        elif isinstance(stmt, ast.AsyncStmt):
            self._flush_cost()
            self.observer.enter_async(stmt)
            try:
                self._exec_block_stmts(stmt.body, env.child())
            finally:
                self._flush_cost()
                self.observer.exit_async()
        elif isinstance(stmt, ast.FinishStmt):
            self._flush_cost()
            self.observer.enter_finish(stmt)
            try:
                self._exec_block_stmts(stmt.body, env.child())
            finally:
                self._flush_cost()
                self.observer.exit_finish()
        elif isinstance(stmt, ast.Block):
            self._exec_scoped_block("block", stmt.nid, stmt, env)
        else:
            raise RuntimeFault(f"unknown statement {type(stmt).__name__}",
                               stmt.line, stmt.col)

    def _exec_assign(self, stmt: ast.Assign, env: Environment) -> None:
        target = stmt.target
        if isinstance(target, ast.VarRef):
            cell = env.lookup(target.name)
            if stmt.op == "=":
                value = self._eval(stmt.value, env)
            else:
                pending = self._pending_cost
                self._pending_cost = 0
                self._obs_cost_read(pending, cell.addr, target)
                value = self._apply_compound(stmt.op, cell.value,
                                             self._eval(stmt.value, env), stmt)
            cell.value = value
            pending = self._pending_cost
            self._pending_cost = 0
            self._obs_cost_write(pending, cell.addr, stmt)
        elif isinstance(target, ast.Index):
            array, index = self._eval_index_parts(target, env)
            addr = array.element_addr(index)
            if stmt.op == "=":
                value = self._eval(stmt.value, env)
            else:
                pending = self._pending_cost
                self._pending_cost = 0
                self._obs_cost_read(pending, addr, target)
                value = self._apply_compound(stmt.op, array.items[index],
                                             self._eval(stmt.value, env), stmt)
            array.items[index] = value
            pending = self._pending_cost
            self._pending_cost = 0
            self._obs_cost_write(pending, addr, stmt)
        elif isinstance(target, ast.FieldAccess):
            struct = self._eval_struct(target.base, env, target)
            if target.field not in struct.fields:
                raise RuntimeFault(
                    f"struct {struct.struct_name} has no field {target.field!r}",
                    target.line, target.col)
            addr = struct.field_addr(target.field)
            if stmt.op == "=":
                value = self._eval(stmt.value, env)
            else:
                pending = self._pending_cost
                self._pending_cost = 0
                self._obs_cost_read(pending, addr, target)
                value = self._apply_compound(stmt.op,
                                             struct.fields[target.field],
                                             self._eval(stmt.value, env), stmt)
            struct.fields[target.field] = value
            pending = self._pending_cost
            self._pending_cost = 0
            self._obs_cost_write(pending, addr, stmt)
        else:
            raise RuntimeFault("invalid assignment target",
                               stmt.line, stmt.col)

    def _apply_compound(self, op: str, old: Any, operand: Any,
                        node: ast.Node) -> Any:
        return self._binary_op(op[0], old, operand, node)

    # ------------------------------------------------------------------
    # Function calls
    # ------------------------------------------------------------------

    def _call_function(self, func: ast.FuncDecl, args: List[Any],
                       call_node: ast.Node) -> Any:
        frame = self.globals_env.child()
        for param, value in zip(func.params, args):
            cell = frame.define(param.name, value)
            pending = self._pending_cost
            self._pending_cost = 0
            self._obs_cost_write(pending, cell.addr, call_node)
        self._flush_cost()
        self._obs_enter_scope("call", func.nid, func.body.nid)
        try:
            self._exec_block_stmts(func.body, frame)
            return None
        except _ReturnSignal as signal:
            return signal.value
        finally:
            self._flush_cost()
            self._obs_exit_scope()

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------

    def _eval(self, expr: ast.Expr, env: Environment) -> Any:
        # _tick() inlined (see _exec_stmt).
        self.ops += 1
        self._pending_cost += 1
        if self.ops >= self._next_check:
            self._check_budget()
        if isinstance(expr, ast.IntLit):
            return expr.value
        if isinstance(expr, ast.FloatLit):
            return expr.value
        if isinstance(expr, ast.BoolLit):
            return expr.value
        if isinstance(expr, ast.StringLit):
            return expr.value
        if isinstance(expr, ast.NullLit):
            return None
        if isinstance(expr, ast.VarRef):
            cell = env.lookup(expr.name)
            pending = self._pending_cost
            self._pending_cost = 0
            self._obs_cost_read(pending, cell.addr, expr)
            return cell.value
        if isinstance(expr, ast.Binary):
            if expr.op == "&&":
                left = self._eval(expr.left, env)
                if not self._truth(left, expr.left):
                    return False
                return self._truth(self._eval(expr.right, env), expr.right)
            if expr.op == "||":
                left = self._eval(expr.left, env)
                if self._truth(left, expr.left):
                    return True
                return self._truth(self._eval(expr.right, env), expr.right)
            left = self._eval(expr.left, env)
            right = self._eval(expr.right, env)
            return self._binary_op(expr.op, left, right, expr)
        if isinstance(expr, ast.Unary):
            value = self._eval(expr.operand, env)
            return self._unary_op(expr.op, value, expr)
        if isinstance(expr, ast.Index):
            array, index = self._eval_index_parts(expr, env)
            pending = self._pending_cost
            self._pending_cost = 0
            self._obs_cost_read(pending, array.element_addr(index), expr)
            return array.items[index]
        if isinstance(expr, ast.FieldAccess):
            struct = self._eval_struct(expr.base, env, expr)
            if expr.field not in struct.fields:
                raise RuntimeFault(
                    f"struct {struct.struct_name} has no field {expr.field!r}",
                    expr.line, expr.col)
            pending = self._pending_cost
            self._pending_cost = 0
            self._obs_cost_read(pending, struct.field_addr(expr.field), expr)
            return struct.fields[expr.field]
        if isinstance(expr, ast.Call):
            return self._eval_call(expr, env)
        if isinstance(expr, ast.NewArray):
            return self._alloc_array(expr, env, 0)
        if isinstance(expr, ast.NewStruct):
            decl = self.program.structs.get(expr.struct_name)
            if decl is None:
                raise RuntimeFault(f"unknown struct {expr.struct_name!r}",
                                   expr.line, expr.col)
            return StructValue(decl.name, decl.fields)
        raise RuntimeFault(f"unknown expression {type(expr).__name__}",
                           expr.line, expr.col)

    def _alloc_array(self, expr: ast.NewArray, env: Environment,
                     dim: int) -> ArrayValue:
        length = self._eval(expr.dims[dim], env)
        if isinstance(length, bool) or not isinstance(length, int):
            raise RuntimeFault("array length must be an integer",
                               expr.line, expr.col)
        if length < 0:
            raise RuntimeFault(f"negative array length {length}",
                               expr.line, expr.col)
        if dim == len(expr.dims) - 1:
            return ArrayValue(length, default_fill(expr.elem_type))
        array = ArrayValue(length, None)
        # Allocate inner arrays; each row shares the remaining dimensions.
        # Re-evaluating the inner dims per row matches Java's semantics for
        # rectangular `new T[n][m]` with side-effect-free dims.
        array.items = [self._alloc_array(expr, env, dim + 1)
                       for _ in range(length)]
        return array

    def _eval_call(self, expr: ast.Call, env: Environment) -> Any:
        func = self.program.functions.get(expr.name)
        if func is not None:
            if len(func.params) != len(expr.args):
                raise RuntimeFault(
                    f"call to {expr.name!r} with {len(expr.args)} args, "
                    f"expected {len(func.params)}", expr.line, expr.col)
            args = [self._eval(a, env) for a in expr.args]
            return self._call_function(func, args, expr)
        builtin = BUILTINS.get(expr.name)
        if builtin is None:
            raise RuntimeFault(f"call to unknown function {expr.name!r}",
                               expr.line, expr.col)
        arity, impl = builtin
        if arity is not None and arity != len(expr.args):
            raise RuntimeFault(
                f"builtin {expr.name!r} expects {arity} args, "
                f"got {len(expr.args)}", expr.line, expr.col)
        args = [self._eval(a, env) for a in expr.args]
        try:
            return impl(self.ctx, args)
        except RuntimeFault as fault:
            if fault.line is None:
                raise RuntimeFault(fault.bare_message, expr.line, expr.col)
            raise

    def _eval_index_parts(self, expr: ast.Index, env: Environment):
        base = self._eval(expr.base, env)
        if not isinstance(base, ArrayValue):
            raise RuntimeFault(f"indexing a non-array value "
                               f"({to_display(base)})", expr.line, expr.col)
        index = self._eval(expr.index, env)
        if isinstance(index, bool) or not isinstance(index, int):
            raise RuntimeFault("array index must be an integer",
                               expr.line, expr.col)
        if not (0 <= index < len(base)):
            raise RuntimeFault(
                f"array index {index} out of bounds for length {len(base)}",
                expr.line, expr.col)
        return base, index

    def _eval_struct(self, base_expr: ast.Expr, env: Environment,
                     node: ast.Node) -> StructValue:
        base = self._eval(base_expr, env)
        if not isinstance(base, StructValue):
            raise RuntimeFault(
                f"field access on non-struct value ({to_display(base)})",
                node.line, node.col)
        return base

    # ------------------------------------------------------------------
    # Operators (module-level functions shared with the compiled engine)
    # ------------------------------------------------------------------

    _truth = staticmethod(truth_value)
    _unary_op = staticmethod(unary_op)
    _binary_op = staticmethod(binary_op)
    _both_ints = staticmethod(both_ints)
    _both_numbers = staticmethod(both_numbers)
    _values_equal = staticmethod(values_equal)


def run_program(program: ast.Program, args: Sequence[Any] = (),
                observer: Optional[ExecutionObserver] = None,
                seed: int = 20140609,
                max_ops: int = 200_000_000,
                engine: Optional[str] = None) -> ExecutionResult:
    """Convenience wrapper: build an interpreter and run ``main(*args)``."""
    return Interpreter(program, observer, seed, max_ops, engine).run(args)
