"""Figure 16: sequential vs original-parallel vs repaired-parallel
execution times on 12 workers (simulated greedy schedule), performance
input sizes.

The repair runs at repair-mode size (cached from Table 2); the repaired
program is *measured* at the performance size — the paper's Section 7.1
workflow.  The timed phase is the repaired program's instrumented
execution + scheduling, i.e. the cost of producing one bar of the figure.

The headline assertion is the paper's: the tool's repair yields parallel
performance almost identical to the expert-written original.
"""

import pytest

from repro.bench import get_benchmark
from repro.graph import measure_program
from repro.lang import serial_elision

from conftest import collect_row, benchmark_names, perf_args

PROCESSORS = 12


@pytest.mark.parametrize("name", benchmark_names())
def test_fig16_row(name, benchmark, repair_cache):
    spec = get_benchmark(name)
    args = perf_args(spec)
    original = spec.parse()
    repaired = repair_cache.get(name, "mrw").repaired

    def measure_repaired():
        return measure_program(repaired, args, processors=PROCESSORS)

    rep = benchmark.pedantic(measure_repaired, rounds=1, iterations=1)
    seq = measure_program(serial_elision(original), args, processors=1)
    orig = measure_program(original, args, processors=PROCESSORS)

    # Shape assertions from the paper:
    # 1. both parallel versions beat sequential;
    assert orig.makespan <= seq.makespan
    assert rep.makespan <= seq.makespan
    # 2. repaired is almost identical to the original parallel version
    #    (generous 25% band: tiny simulator constants differ).
    assert rep.makespan <= orig.makespan * 1.25 + 100, (
        name, rep.makespan, orig.makespan)

    collect_row("Figure 16", {
        "benchmark": name,
        "sequential": seq.makespan,
        "original_parallel": orig.makespan,
        "repaired_parallel": rep.makespan,
        "original_speedup": round(seq.makespan / orig.makespan, 2),
        "repaired_speedup": round(seq.makespan / rep.makespan, 2),
    })
