"""Table 4: number of data races detected by SRW vs MRW ESP-bags.

The timed phase is one standalone SRW detection run (the cheapest
detector); counts come from it and from the cached MRW artefact.  The
paper's shape: MRW >= SRW everywhere, with large gaps for the
multiple-unjoined-writers benchmarks (quicksort, mergesort, spanning
tree) and equality for the one-writer-one-reader ones (fibonacci,
nqueens, series, sor, crypt, lufact, fannkuch, mandelbrot).
"""

import pytest

from repro.bench import get_benchmark
from repro.lang import strip_finishes
from repro.races import detect_races

from conftest import bench_args, collect_row, benchmark_names

#: benchmarks where the paper's Table 4 shows SRW == MRW
EQUAL_IN_PAPER = {"fibonacci", "nqueens", "series", "sor", "crypt",
                  "lufact", "fannkuch", "mandelbrot"}
#: benchmarks where the paper's Table 4 shows a large MRW excess
STRICT_IN_PAPER = {"quicksort", "mergesort", "spanningtree"}


@pytest.mark.parametrize("name", benchmark_names())
def test_table4_row(name, benchmark, repair_cache):
    spec = get_benchmark(name)
    args = bench_args(spec)
    buggy = strip_finishes(spec.parse())

    def srw_detection():
        return detect_races(buggy, args, algorithm="srw")

    srw = benchmark.pedantic(srw_detection, rounds=1, iterations=1)
    mrw = repair_cache.get(name, "mrw").iterations[0].detection

    srw_count = len(srw.report)
    mrw_count = len(mrw.report)
    assert mrw_count >= srw_count
    assert srw_count > 0
    if name in STRICT_IN_PAPER:
        assert mrw_count > srw_count, (name, srw_count, mrw_count)

    collect_row("Table 4", {
        "benchmark": name,
        "srw_races": srw_count,
        "mrw_races": mrw_count,
        "ratio": round(mrw_count / srw_count, 2),
        "paper_shape": ("equal" if name in EQUAL_IN_PAPER else "mrw > srw"),
    })
