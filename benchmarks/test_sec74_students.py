"""Section 7.4: automated grading of student homework.

Times the grading of the full 59-submission population against the tool's
reference repair, and checks the paper's class counts (5 racy / 29
over-synchronized / 25 matched).
"""

from repro.bench.students import run_student_experiment

from conftest import collect_row


def test_student_grading(benchmark):
    result = benchmark.pedantic(run_student_experiment,
                                rounds=1, iterations=1)
    assert result["total"] == 59
    assert result["racy"] == 5
    assert result["over_synchronized"] == 29
    assert result["matched"] == 25
    assert result["mismatches"] == []
    collect_row("Section 7.4", {
        "total": result["total"],
        "racy": result["racy"],
        "over_synchronized": result["over_synchronized"],
        "matched": result["matched"],
        "paper": "59 = 5 + 29 + 25",
    })
