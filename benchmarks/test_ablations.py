"""Ablation benchmarks for the design choices DESIGN.md calls out.

Not part of the paper's evaluation — these quantify the implementation
decisions of this reproduction:

* **dependence-graph coalescing** — how much the step-run coalescing
  shrinks the placement DP's input (and speeds up `solve_placement`);
* **trace-file round trip** — the cost of serializing + reparsing the
  race trace between detection and repair (the paper attributes repair
  time largely to reading trace files; mergesort is its showcase);
* **S-DPST pruning** (§9 future work) — how much of the tree the
  race-free-subtree GC reclaims per benchmark.
"""

import time

import pytest

from repro.bench import get_benchmark
from repro.dpst import prune_race_free
from repro.lang import strip_finishes
from repro.races import detect_races
from repro.repair import repair_program
from repro.repair.dependence import (
    build_dependence_graph,
    group_races_by_nslca,
)
from repro.repair.placement import solve_placement

from conftest import bench_args, collect_row


@pytest.mark.parametrize("name", ["series", "mandelbrot", "sor"])
def test_ablation_coalescing(name, benchmark):
    """Coalescing shrinks the widest NS-LCA graph by orders of magnitude."""
    spec = get_benchmark(name)
    buggy = strip_finishes(spec.parse())
    det = detect_races(buggy, bench_args(spec))
    pairs = det.report.distinct_step_pairs()
    groups = group_races_by_nslca(det.dpst, pairs)
    nslca, group = max(groups.items(), key=lambda kv: len(kv[1]))

    raw = build_dependence_graph(det.dpst, nslca, group, coalesce=False)

    def coalesced_solve():
        graph = build_dependence_graph(det.dpst, nslca, group)
        return graph, solve_placement(graph.times(),
                                      [n.is_async for n in graph.nodes],
                                      graph.edges)

    graph, solution = benchmark.pedantic(coalesced_solve, rounds=1,
                                         iterations=1)
    assert solution is not None
    assert graph.size < raw.size
    collect_row("Table 2", {  # appended as extra context rows
        "benchmark": f"[ablation/coalescing] {name}",
        "hj_seq_ms": "-",
        "detection_ms": "-",
        "sdpst_nodes": f"raw n={raw.size}",
        "races": f"coalesced n={graph.size}",
        "repair_s": "-",
    })


@pytest.mark.parametrize("name", ["mergesort"])
def test_ablation_trace_roundtrip(name, benchmark):
    """The trace-file round trip is a real share of MRW repair time."""
    spec = get_benchmark(name)
    buggy = strip_finishes(spec.parse())
    args = bench_args(spec)

    def with_trace():
        return repair_program(buggy, args, trace_roundtrip=True)

    start = time.perf_counter()
    without = repair_program(buggy, args, trace_roundtrip=False)
    no_trace_s = time.perf_counter() - start
    with_result = benchmark.pedantic(with_trace, rounds=1, iterations=1)
    assert with_result.converged and without.converged
    assert with_result.repaired_source == without.repaired_source


@pytest.mark.parametrize("name", ["quicksort", "mergesort", "fannkuch"])
def test_ablation_dpst_pruning(name, benchmark):
    """§9 future work: pruning race-free subtrees after detection."""
    spec = get_benchmark(name)
    buggy = strip_finishes(spec.parse())
    det = detect_races(buggy, bench_args(spec))
    before = det.dpst.node_count()

    def prune():
        return prune_race_free(det.dpst, det.report)

    removed = benchmark.pedantic(prune, rounds=1, iterations=1)
    assert removed >= 0
    assert det.dpst.node_count() == before - removed
