"""Table 3: SRW vs MRW total repair time.

SRW needs (at least) two detector runs — one to repair, one to confirm —
while MRW repairs in a single run.  The timed phase here is the full SRW
repair loop; the MRW side reuses the Table 2 artefact (identical
pipeline).  The paper's headline is mergesort, where MRW's huge trace
makes its repair several times slower than SRW's two cheap runs.
"""

import pytest

from repro.bench import get_benchmark
from repro.lang import strip_finishes
from repro.races import detect_races
from repro.repair import repair_program

from conftest import bench_args, collect_row, benchmark_names


@pytest.mark.parametrize("name", benchmark_names())
def test_table3_row(name, benchmark, repair_cache):
    spec = get_benchmark(name)
    args = bench_args(spec)
    buggy = strip_finishes(spec.parse())

    def srw_repair():
        return repair_program(buggy, args, algorithm="srw")

    srw = benchmark.pedantic(srw_repair, rounds=1, iterations=1)
    assert srw.converged
    repair_cache.put(name, "srw", srw)
    # SRW's repaired program must also be MRW-clean (all races fixed).
    confirm = detect_races(srw.repaired, args, algorithm="mrw")
    assert confirm.report.is_race_free

    mrw = repair_cache.get(name, "mrw")
    collect_row("Table 3", {
        "benchmark": name,
        "srw_detect_ms": round(srw.detection_time_s * 1000.0, 1),
        "mrw_detect_ms": round(mrw.detection_time_s * 1000.0, 1),
        "srw_repair_s": round(srw.repair_time_s, 2),
        "mrw_repair_s": round(mrw.repair_time_s, 2),
        "srw_second_detect_ms": round(
            srw.final_detection.elapsed_s * 1000.0, 1),
        "srw_total_s": round(srw.detection_time_s + srw.repair_time_s, 2),
        "mrw_total_s": round(mrw.detection_time_s + mrw.repair_time_s, 2),
        "srw_runs": len(srw.iterations) + 1,
        "mrw_runs": len(mrw.iterations) + 1,
    })
