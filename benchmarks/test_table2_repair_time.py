"""Table 2: time for program repair (repair-mode inputs, MRW detector).

Each benchmark row reports: HJ-Seq (uninstrumented sequential run),
data-race detection time (instrumented run + S-DPST construction),
S-DPST node count, number of MRW races, and the repair (placement) time.

The timed phase is the complete repair pipeline; the resulting artefact
is cached for the other tables.
"""

import time

import pytest

from repro.bench import get_benchmark
from repro.lang import strip_finishes
from repro.repair import repair_program
from repro.runtime import run_program

from conftest import bench_args, collect_row, benchmark_names


@pytest.mark.parametrize("name", benchmark_names())
def test_table2_row(name, benchmark, repair_cache):
    spec = get_benchmark(name)
    args = bench_args(spec)
    buggy = strip_finishes(spec.parse())

    start = time.perf_counter()
    run_program(buggy, args)
    hj_seq_ms = (time.perf_counter() - start) * 1000.0

    def full_repair():
        return repair_program(buggy, args)

    result = benchmark.pedantic(full_repair, rounds=1, iterations=1)
    assert result.converged, result.summary()
    repair_cache.put(name, "mrw", result)
    first = result.iterations[0].detection

    # Paper shape: the count columns grow together with repair time, and
    # a single iteration with one test case suffices (Section 7.1).
    assert len(result.iterations) == 1
    collect_row("Table 2", {
        "benchmark": name,
        "hj_seq_ms": round(hj_seq_ms, 1),
        "detection_ms": round(first.elapsed_s * 1000.0, 1),
        "sdpst_nodes": first.dpst_node_count,
        "races": len(first.report),
        "repair_s": round(result.repair_time_s, 2),
    })
