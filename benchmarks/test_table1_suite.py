"""Table 1: the benchmark suite and its input sizes.

This bench times the front-end (parse + validate) per benchmark and
collects the Table 1 rows.
"""

import pytest

from repro.bench import get_benchmark
from repro.lang import parse, validate
from repro.runtime import BUILTIN_NAMES

from conftest import benchmark_names, collect_row


@pytest.mark.parametrize("name", benchmark_names())
def test_table1_row(name, benchmark):
    spec = get_benchmark(name)

    def front_end():
        program = parse(spec.source, source_name=spec.name)
        validate(program, BUILTIN_NAMES)
        return program

    program = benchmark(front_end)
    assert "main" in program.functions
    collect_row("Table 1", {
        "source": spec.suite,
        "benchmark": spec.name,
        "description": spec.description,
        "paper_repair_input": spec.paper_repair_input,
        "repro_repair_args": spec.repair_args,
        "paper_perf_input": spec.paper_perf_input,
        "repro_perf_args": spec.perf_args,
    })
