"""Shared infrastructure for the paper-experiment benchmarks.

Heavy artefacts (full repairs at the paper's repair-mode input sizes) are
computed once per session and shared across the table benchmarks; each
test still *times* its own representative phase via pytest-benchmark.

The assembled experiment tables are printed in the terminal summary, so
``pytest benchmarks/ --benchmark-only`` regenerates the paper's tables
and figure series in one run.

Set ``REPRO_BENCH_QUICK=1`` to use tiny test inputs instead of the
paper's repair-mode sizes (useful for smoke-testing the suite).
"""

from __future__ import annotations

import gc
import os
from typing import Dict

import pytest

from repro.bench import all_benchmarks, get_benchmark
from repro.bench.harness import format_rows
from repro.lang import strip_finishes
from repro.repair import RepairResult, repair_program

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))

#: benchmark name -> list of row dicts, rendered at the end of the run.
_collected_tables: Dict[str, list] = {}


def bench_args(spec):
    return spec.test_args if QUICK else spec.repair_args


def perf_args(spec):
    return spec.test_args if QUICK else spec.perf_args


def collect_row(table: str, row: dict) -> None:
    _collected_tables.setdefault(table, []).append(row)


def benchmark_names():
    return [spec.name for spec in all_benchmarks()]


class RepairCache:
    """Session-wide cache of repair results per (benchmark, algorithm)."""

    def __init__(self) -> None:
        self._results: Dict[tuple, RepairResult] = {}

    def get(self, name: str, algorithm: str) -> RepairResult:
        key = (name, algorithm)
        if key not in self._results:
            spec = get_benchmark(name)
            buggy = strip_finishes(spec.parse())
            self.put(name, algorithm,
                     repair_program(buggy, bench_args(spec),
                                    algorithm=algorithm))
        return self._results[key]

    def put(self, name: str, algorithm: str, result: RepairResult) -> None:
        self._results[(name, algorithm)] = result
        # The cached artefacts (S-DPSTs, race lists) hold millions of
        # long-lived objects; without freezing them the cyclic GC rescans
        # the whole population during later allocation-heavy phases and
        # distorts their timings by an order of magnitude.
        gc.collect()
        gc.freeze()


@pytest.fixture(scope="session")
def repair_cache():
    return RepairCache()


def pytest_terminal_summary(terminalreporter):
    for title in ("Table 1", "Figure 16", "Table 2", "Table 3", "Table 4",
                  "Section 7.4"):
        rows = _collected_tables.get(title)
        if not rows:
            continue
        terminalreporter.write_sep("=", f"{title} (reproduction)")
        terminalreporter.write_line(format_rows(rows))
